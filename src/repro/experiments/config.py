"""Experiment scale configuration.

The paper's setup (112×112×16 clips, 9,324-video galleries, 1,000-query
attacks on 8 GPUs) is mapped to a CPU-scale working point that preserves
the regime the attacks operate in — see DESIGN.md §5.  Every field can be
overridden per run; :data:`QUICK_SCALE` exists for tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentScale:
    """All knobs of the reproduction working point."""

    # ---------------- dataset ----------------
    height: int = 24
    width: int = 24
    num_frames: int = 8  # paper: 16 (halved; frame budgets keep the ratio)
    #: per-dataset (num_classes, train_videos, test_videos)
    dataset_sizes: tuple = (
        ("ucf101", 40, 320, 40),
        ("hmdb51", 24, 192, 24),
    )

    # ---------------- victim ----------------
    feature_dim: int = 32  # paper: 768
    model_width: int = 4
    victim_epochs: int = 2
    m: int = 20  # returned-list length
    num_nodes: int = 4  # distributed gallery shards

    # ---------------- surrogate ----------------
    surrogate_rounds: int = 4  # Z in Section IV-B-1
    surrogate_branch: int = 3  # M in Section IV-B-1
    surrogate_epochs: int = 4
    surrogate_feature_dim: int = 32

    # ---------------- attack ----------------
    n: int = 6  # frame budget (of num_frames)
    k_fraction: float = 0.4  # pixel budget as a fraction of N·H·W·C
    tau: float = 30.0  # ℓ∞ budget in 8-bit units
    iter_num_q: int = 120
    iter_num_h: int = 2
    transfer_outer_iters: int = 2
    theta_steps: int = 6
    timi_iterations: int = 10
    nes_iterations: int = 30
    nes_samples: int = 4
    query_iterations: int = 240  # SimBA budget for Vanilla/HEU-Sim

    # ---------------- protocol ----------------
    pairs: int = 3  # paper: 10 attack pairs
    seed: int = 0

    # -------------------------------------------------------------- #
    def dataset_size(self, name: str) -> tuple[int, int, int]:
        """Return (num_classes, train, test) for a dataset name."""
        for ds_name, classes, train, test in self.dataset_sizes:
            if ds_name == name:
                return classes, train, test
        raise KeyError(f"no size configured for dataset {name!r}")

    def k_for(self, total_values: int) -> int:
        """Absolute pixel budget ``k`` for a video of ``total_values``."""
        return max(1, int(round(self.k_fraction * total_values)))

    def replace(self, **overrides) -> "ExperimentScale":
        """Return a copy with fields overridden."""
        return dataclasses.replace(self, **overrides)

    def cache_key(self, *extra: object) -> str:
        """Stable hash of the configuration (for fixture caching)."""
        payload = dataclasses.asdict(self)
        payload["extra"] = [str(item) for item in extra]
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]


#: The standard working point used by benchmarks.
DEFAULT_SCALE = ExperimentScale()

#: A minimal configuration for fast tests.
QUICK_SCALE = ExperimentScale(
    height=16,
    width=16,
    dataset_sizes=(
        ("ucf101", 8, 48, 12),
        ("hmdb51", 6, 36, 10),
    ),
    feature_dim=16,
    victim_epochs=1,
    m=12,
    surrogate_rounds=2,
    surrogate_branch=2,
    surrogate_epochs=1,
    iter_num_q=20,
    iter_num_h=1,
    transfer_outer_iters=1,
    theta_steps=3,
    timi_iterations=3,
    nes_iterations=5,
    query_iterations=40,
    pairs=1,
)
