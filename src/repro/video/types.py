"""The :class:`Video` container and model-layout conversions.

Videos follow the paper's convention ``v ∈ R^{N×W×H×C}``: an array of
``N`` frames, each ``W×H`` with ``C`` channels, with pixel values in
``[0, 1]``.  Models consume the channels-first layout ``(C, N, H, W)``
produced by :func:`to_model_input`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Video:
    """A single video clip.

    Attributes
    ----------
    pixels:
        ``(N, H, W, C)`` float array with values in ``[0, 1]``.
    label:
        Integer action-class label (``-1`` when unknown).
    video_id:
        Stable identifier used by galleries and retrieval lists.
    """

    pixels: np.ndarray
    label: int = -1
    video_id: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.pixels = np.asarray(self.pixels, dtype=np.float64)
        if self.pixels.ndim != 4:
            raise ValueError(
                f"video pixels must be (N, H, W, C), got shape {self.pixels.shape}"
            )

    @property
    def num_frames(self) -> int:
        return self.pixels.shape[0]

    @property
    def frame_shape(self) -> tuple[int, int, int]:
        """Return ``(H, W, C)`` of a single frame."""
        return self.pixels.shape[1:]

    @property
    def num_pixels_per_frame(self) -> int:
        """``B`` in the paper: number of pixel *values* per frame (H·W·C)."""
        height, width, channels = self.frame_shape
        return height * width * channels

    def copy(self) -> "Video":
        """Deep-copy pixels; label/id/metadata are shared immutables."""
        return Video(self.pixels.copy(), self.label, self.video_id, dict(self.metadata))

    def clipped(self, low: float = 0.0, high: float = 1.0) -> "Video":
        """Return a copy with pixels clamped to the valid range."""
        return Video(np.clip(self.pixels, low, high), self.label, self.video_id,
                     dict(self.metadata))

    def perturbed(self, perturbation: np.ndarray, clip: bool = True) -> "Video":
        """Return ``v + φ``, optionally clamped to ``[0, 1]``.

        The returned video keeps this video's label and gets a derived id.
        """
        pixels = self.pixels + perturbation
        if clip:
            pixels = np.clip(pixels, 0.0, 1.0)
        return Video(pixels, self.label, f"{self.video_id}+adv", dict(self.metadata))

    def perturbation_from(self, original: "Video") -> np.ndarray:
        """Return ``φ = self − original`` as a raw array."""
        if self.pixels.shape != original.pixels.shape:
            raise ValueError("videos must share a shape to diff them")
        return self.pixels - original.pixels


def to_model_input(videos: Video | list[Video]) -> np.ndarray:
    """Convert video(s) to the model batch layout ``(B, C, N, H, W)``."""
    if isinstance(videos, Video):
        videos = [videos]
    batch = np.stack([v.pixels for v in videos])  # (B, N, H, W, C)
    return np.ascontiguousarray(batch.transpose(0, 4, 1, 2, 3))


def from_model_input(batch: np.ndarray) -> list[Video]:
    """Invert :func:`to_model_input` (labels/ids are not recoverable)."""
    if batch.ndim != 5:
        raise ValueError(f"expected (B, C, N, H, W), got shape {batch.shape}")
    frames_first = batch.transpose(0, 2, 3, 4, 1)
    return [Video(clip) for clip in frames_first]
