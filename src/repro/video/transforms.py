"""Clip-level transforms: temporal sampling, quantization, normalization."""

from __future__ import annotations

import numpy as np

from repro.video.types import Video


def uniform_temporal_sample(video: Video, num_frames: int) -> Video:
    """Uniformly sample a ``num_frames``-frame snippet (paper follows [1]).

    If the clip is shorter than ``num_frames`` the last frame is repeated.
    """
    total = video.num_frames
    if total >= num_frames:
        indices = np.linspace(0, total - 1, num_frames).round().astype(int)
    else:
        indices = np.concatenate(
            [np.arange(total), np.full(num_frames - total, total - 1, dtype=int)]
        )
    return Video(video.pixels[indices], video.label, video.video_id,
                 dict(video.metadata))


def quantize_uint8(video: Video) -> np.ndarray:
    """Quantize pixels to 8-bit integers (as served by a real video API)."""
    return np.clip(np.rint(video.pixels * 255.0), 0, 255).astype(np.uint8)


def dequantize_uint8(pixels: np.ndarray, label: int = -1,
                     video_id: str = "", metadata: dict | None = None) -> Video:
    """Invert :func:`quantize_uint8` back into a float video.

    ``metadata`` is carried through (copied, like
    :func:`uniform_temporal_sample` does) so a quantization round trip
    does not strip it from the video.
    """
    return Video(pixels.astype(np.float64) / 255.0, label, video_id,
                 {} if metadata is None else dict(metadata))


def normalize_clip(video: Video, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Standardize pixels (used at model input boundaries)."""
    return (video.pixels - mean) / std
