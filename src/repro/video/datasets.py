"""Synthetic stand-ins for the UCF101 and HMDB51 benchmarks.

The paper evaluates on UCF101 (9,324 train / 3,996 test / 101 classes) and
HMDB51 (4,900 / 2,100 / 51).  Those corpora cannot be shipped here, so
:class:`SyntheticVideoDataset` procedurally generates class-separable
action clips (see :mod:`repro.video.motion`).  The *full-scale* specs are
preserved in :data:`UCF101_SPEC` / :data:`HMDB51_SPEC`; the default loader
scales counts and resolution down so the complete experiment grid runs on
one CPU core, keeping the train/test ratio and the UCF>HMDB size ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.utils.seeding import SeedSequence
from repro.video.motion import class_spec, render_clip
from repro.video.types import Video


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset configuration (Table I analog)."""

    name: str
    num_classes: int
    train_videos: int
    test_videos: int
    num_frames: int = 16
    height: int = 112
    width: int = 112

    def scaled(self, num_classes: int, train_videos: int, test_videos: int,
               height: int, width: int, num_frames: int | None = None) -> "DatasetSpec":
        """Return a resource-scaled copy preserving the dataset identity."""
        return replace(
            self,
            num_classes=num_classes,
            train_videos=train_videos,
            test_videos=test_videos,
            height=height,
            width=width,
            num_frames=self.num_frames if num_frames is None else num_frames,
        )


#: Paper-scale dataset descriptions (Table I).
UCF101_SPEC = DatasetSpec("ucf101", num_classes=101, train_videos=9324, test_videos=3996)
HMDB51_SPEC = DatasetSpec("hmdb51", num_classes=51, train_videos=4900, test_videos=2100)

_SPECS = {spec.name: spec for spec in (UCF101_SPEC, HMDB51_SPEC)}

#: Default CPU-scale shrink factors (see DESIGN.md §5).
_DEFAULT_SCALE = {
    "ucf101": dict(num_classes=10, train_videos=80, test_videos=30, height=32, width=32),
    "hmdb51": dict(num_classes=6, train_videos=42, test_videos=18, height=32, width=32),
}


class SyntheticVideoDataset:
    """Procedurally generated, class-separable video dataset.

    Videos are created lazily per split and cached.  All randomness is
    derived from ``seed`` so two datasets built with the same arguments are
    identical.
    """

    def __init__(self, spec: DatasetSpec, seed: int = 0) -> None:
        if spec.train_videos < spec.num_classes:
            raise ValueError("need at least one training video per class")
        self.spec = spec
        self.seed = int(seed)
        self._seeds = SeedSequence(self.seed)
        self._cache: dict[str, list[Video]] = {}

    # -------------------------------------------------------------- #
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    def _class_offset(self) -> int:
        # Distinct datasets draw from disjoint class-recipe ranges so a
        # "ucf" class never aliases an "hmdb" class.
        return 0 if self.spec.name == "ucf101" else 500

    def _generate_split(self, split: str, count: int) -> list[Video]:
        spec = self.spec
        offset = self._class_offset()
        videos: list[Video] = []
        for i in range(count):
            label = i % spec.num_classes
            rng = self._seeds.rng(split, i)
            clip = render_clip(
                class_spec(offset + label),
                num_frames=spec.num_frames,
                height=spec.height,
                width=spec.width,
                rng=rng,
            )
            videos.append(
                Video(clip, label=label, video_id=f"{spec.name}/{split}/{i:05d}")
            )
        return videos

    def split(self, name: str) -> list[Video]:
        """Return the ``"train"`` or ``"test"`` split (cached)."""
        if name not in ("train", "test"):
            raise ValueError(f"unknown split {name!r}")
        if name not in self._cache:
            count = self.spec.train_videos if name == "train" else self.spec.test_videos
            self._cache[name] = self._generate_split(name, count)
        return self._cache[name]

    @property
    def train(self) -> list[Video]:
        return self.split("train")

    @property
    def test(self) -> list[Video]:
        return self.split("test")

    # -------------------------------------------------------------- #
    def sample_attack_pairs(self, count: int, rng_or_seed=0) -> list[tuple[Video, Video]]:
        """Sample ``count`` (original, target) pairs with different labels.

        Mirrors the paper's evaluation protocol: "we randomly choose ten
        pairs of two videos from the training dataset: one as the original
        video and the other as the target video."
        """
        rng = SeedSequence(self.seed).rng("pairs", rng_or_seed)
        train = self.train
        pairs: list[tuple[Video, Video]] = []
        attempts = 0
        while len(pairs) < count:
            a, b = rng.choice(len(train), size=2, replace=False)
            if train[a].label != train[b].label:
                pairs.append((train[a], train[b]))
            attempts += 1
            if attempts > 100 * count:
                raise RuntimeError("could not sample label-distinct pairs")
        return pairs


def load_dataset(name: str, *, seed: int = 0, paper_scale: bool = False,
                 **overrides) -> SyntheticVideoDataset:
    """Load a synthetic dataset by benchmark name.

    Parameters
    ----------
    name:
        ``"ucf101"`` or ``"hmdb51"``.
    paper_scale:
        If true, use the full Table-I sizes (slow: tens of thousands of
        112×112 clips).  Default uses the CPU-scale shrink in
        ``_DEFAULT_SCALE``; individual fields can be overridden by keyword
        (``num_classes=…``, ``height=…``, ...).
    """
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_SPECS)}")
    spec = _SPECS[key]
    if not paper_scale:
        params = dict(_DEFAULT_SCALE[key])
        params.update(overrides)
        spec = spec.scaled(**params)
    elif overrides:
        spec = spec.scaled(**{**_spec_fields(spec), **overrides})
    return SyntheticVideoDataset(spec, seed=seed)


def _spec_fields(spec: DatasetSpec) -> dict:
    return dict(
        num_classes=spec.num_classes,
        train_videos=spec.train_videos,
        test_videos=spec.test_videos,
        height=spec.height,
        width=spec.width,
    )
