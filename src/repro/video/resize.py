"""Bilinear spatial resizing of videos.

Real retrieval services normalize uploads to a fixed resolution (the
paper's models consume 112×112).  :func:`resize_video` provides that
preprocessing step for arbitrary input sizes, implemented as separable
bilinear interpolation in pure numpy.
"""

from __future__ import annotations

import numpy as np

from repro.video.types import Video


def _bilinear_axis(pixels: np.ndarray, new_size: int, axis: int) -> np.ndarray:
    """Resample one spatial axis with bilinear weights (align_corners=False)."""
    old_size = pixels.shape[axis]
    if old_size == new_size:
        return pixels
    # Pixel-center sampling positions in the source grid.
    positions = (np.arange(new_size) + 0.5) * (old_size / new_size) - 0.5
    positions = np.clip(positions, 0.0, old_size - 1.0)
    lower = np.floor(positions).astype(int)
    upper = np.minimum(lower + 1, old_size - 1)
    weight = (positions - lower).reshape(
        [-1 if i == axis else 1 for i in range(pixels.ndim)]
    )
    lower_vals = np.take(pixels, lower, axis=axis)
    upper_vals = np.take(pixels, upper, axis=axis)
    return lower_vals * (1.0 - weight) + upper_vals * weight


def resize_video(video: Video, height: int, width: int) -> Video:
    """Return a bilinearly resized copy with frames ``height × width``."""
    if height < 1 or width < 1:
        raise ValueError("target size must be positive")
    pixels = _bilinear_axis(video.pixels, height, axis=1)
    pixels = _bilinear_axis(pixels, width, axis=2)
    return Video(np.clip(pixels, 0.0, 1.0), video.label, video.video_id,
                 dict(video.metadata))
