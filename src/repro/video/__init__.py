"""Video data substrate.

Provides the :class:`~repro.video.types.Video` container used across the
library, procedural per-class motion generators, and synthetic stand-ins
for the UCF101 and HMDB51 benchmarks (see DESIGN.md for the substitution
rationale).
"""

from repro.video.types import Video, to_model_input, from_model_input
from repro.video.motion import MotionClassSpec, render_clip, class_spec
from repro.video.datasets import (
    DatasetSpec,
    SyntheticVideoDataset,
    load_dataset,
    UCF101_SPEC,
    HMDB51_SPEC,
)
from repro.video.transforms import (
    uniform_temporal_sample,
    quantize_uint8,
    dequantize_uint8,
    normalize_clip,
)
from repro.video.resize import resize_video

__all__ = [
    "Video",
    "to_model_input",
    "from_model_input",
    "MotionClassSpec",
    "render_clip",
    "class_spec",
    "DatasetSpec",
    "SyntheticVideoDataset",
    "load_dataset",
    "UCF101_SPEC",
    "HMDB51_SPEC",
    "uniform_temporal_sample",
    "quantize_uint8",
    "dequantize_uint8",
    "normalize_clip",
    "resize_video",
]
