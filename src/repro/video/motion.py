"""Procedural action-class motion generators.

Each synthetic action class is a deterministic parametric recipe — sprite
shape, base colour, motion law (translation, oscillation, circular orbit,
scaling "zoom", or shear), speed and direction — derived from the class
index.  Individual videos of a class vary by instance-level jitter (start
position, phase, texture noise), so a class forms a cluster in any
reasonable spatio-temporal feature space: exactly the property the
retrieval models and attacks rely on (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.seeding import seeded_rng

_MOTIONS = ("translate", "oscillate", "orbit", "zoom", "shear")
_SHAPES = ("square", "disc", "bar", "cross")


@dataclass(frozen=True)
class MotionClassSpec:
    """Deterministic recipe describing one synthetic action class."""

    class_index: int
    motion: str
    shape: str
    color: tuple[float, float, float]
    direction: float  # radians
    speed: float  # fraction of frame size traversed per clip
    size: float  # sprite radius as a fraction of frame size
    frequency: float  # oscillation / orbit cycles per clip
    background_tone: float


def class_spec(class_index: int) -> MotionClassSpec:
    """Derive the deterministic :class:`MotionClassSpec` for a class index."""
    rng = seeded_rng(910_000 + int(class_index))
    hue = rng.uniform(0.0, 1.0)
    color = _hsv_to_rgb(hue, 0.85, 0.95)
    return MotionClassSpec(
        class_index=int(class_index),
        motion=_MOTIONS[class_index % len(_MOTIONS)],
        shape=_SHAPES[(class_index // len(_MOTIONS)) % len(_SHAPES)],
        color=color,
        direction=float(rng.uniform(0.0, 2.0 * np.pi)),
        speed=float(rng.uniform(0.35, 0.8)),
        size=float(rng.uniform(0.14, 0.24)),
        frequency=float(rng.uniform(1.0, 2.5)),
        background_tone=float(rng.uniform(0.25, 0.7)),
    )


def _hsv_to_rgb(h: float, s: float, v: float) -> tuple[float, float, float]:
    i = int(h * 6.0) % 6
    f = h * 6.0 - int(h * 6.0)
    p, q, t = v * (1 - s), v * (1 - f * s), v * (1 - (1 - f) * s)
    return [(v, t, p), (q, v, p), (p, v, t), (p, q, v), (t, p, v), (v, p, q)][i]


def _sprite_mask(shape: str, yy: np.ndarray, xx: np.ndarray,
                 cy: float, cx: float, radius: float, angle: float) -> np.ndarray:
    """Soft occupancy mask of a sprite centred at ``(cy, cx)``."""
    dy, dx = yy - cy, xx - cx
    # Rotate coordinates so bars/crosses spin with the motion angle.
    ry = dy * np.cos(angle) - dx * np.sin(angle)
    rx = dy * np.sin(angle) + dx * np.cos(angle)
    if shape == "disc":
        dist = np.sqrt(dy**2 + dx**2)
        return np.clip((radius - dist) / (0.3 * radius + 1e-9), 0.0, 1.0)
    if shape == "square":
        dist = np.maximum(np.abs(ry), np.abs(rx))
        return np.clip((radius - dist) / (0.3 * radius + 1e-9), 0.0, 1.0)
    if shape == "bar":
        inside = (np.abs(ry) < radius * 0.35) & (np.abs(rx) < radius * 1.4)
        return inside.astype(float)
    if shape == "cross":
        arm1 = (np.abs(ry) < radius * 0.3) & (np.abs(rx) < radius * 1.2)
        arm2 = (np.abs(rx) < radius * 0.3) & (np.abs(ry) < radius * 1.2)
        return (arm1 | arm2).astype(float)
    raise ValueError(f"unknown sprite shape {shape!r}")


def _sprite_center(spec: MotionClassSpec, progress: float,
                   start: tuple[float, float], phase: float) -> tuple[float, float, float]:
    """Return ``(cy, cx, extra_angle)`` at clip ``progress`` in [0, 1]."""
    sy, sx = start
    if spec.motion == "translate":
        cy = sy + spec.speed * progress * np.sin(spec.direction)
        cx = sx + spec.speed * progress * np.cos(spec.direction)
        return cy % 1.0, cx % 1.0, 0.0
    if spec.motion == "oscillate":
        swing = 0.5 * spec.speed * np.sin(2 * np.pi * spec.frequency * progress + phase)
        cy = sy + swing * np.sin(spec.direction)
        cx = sx + swing * np.cos(spec.direction)
        return cy % 1.0, cx % 1.0, 0.0
    if spec.motion == "orbit":
        angle = 2 * np.pi * spec.frequency * progress + phase
        cy = sy + 0.5 * spec.speed * np.sin(angle)
        cx = sx + 0.5 * spec.speed * np.cos(angle)
        return cy % 1.0, cx % 1.0, angle
    if spec.motion == "zoom":
        return sy, sx, 0.0
    if spec.motion == "shear":
        cy = sy
        cx = (sx + spec.speed * progress) % 1.0
        return cy, cx, 2 * np.pi * spec.frequency * progress
    raise ValueError(f"unknown motion {spec.motion!r}")


def render_clip(spec: MotionClassSpec, num_frames: int, height: int, width: int,
                rng: np.random.Generator | int | None = None,
                noise: float = 0.05, color_jitter: float = 0.18) -> np.ndarray:
    """Render one ``(N, H, W, 3)`` clip of the given class.

    Instance-level randomness (start position, phase, background texture,
    sprite-colour jitter, pixel noise) comes from ``rng``; class-level
    appearance and the motion law come from ``spec``.  The jitter keeps
    classes from being trivially colour-separable — real action classes
    share appearance statistics, and retrieval models must rely on motion
    too.
    """
    rng = seeded_rng(rng)
    yy, xx = np.meshgrid(
        np.linspace(0.0, 1.0, height), np.linspace(0.0, 1.0, width), indexing="ij"
    )
    start = (float(rng.uniform(0.25, 0.75)), float(rng.uniform(0.25, 0.75)))
    phase = float(rng.uniform(0.0, 2.0 * np.pi))

    # Static textured background shared by all frames of the instance.
    tone = spec.background_tone
    texture = 0.08 * np.sin(
        2 * np.pi * (yy * rng.uniform(1.0, 3.0) + xx * rng.uniform(1.0, 3.0))
        + rng.uniform(0, 2 * np.pi)
    )
    background = np.clip(tone + texture, 0.0, 1.0)

    clip = np.empty((num_frames, height, width, 3), dtype=np.float64)
    color = np.asarray(spec.color)
    if color_jitter > 0.0:
        color = np.clip(color + rng.normal(0.0, color_jitter, size=3), 0.0, 1.0)
    for f in range(num_frames):
        progress = f / max(num_frames - 1, 1)
        cy, cx, angle = _sprite_center(spec, progress, start, phase)
        radius = spec.size
        if spec.motion == "zoom":
            radius = spec.size * (0.6 + 0.8 * progress)
        mask = _sprite_mask(spec.shape, yy, xx, cy, cx, radius, angle)
        frame = background[..., None] * (1.0 - mask[..., None]) + color * mask[..., None]
        clip[f] = frame
    if noise > 0.0:
        clip += rng.normal(0.0, noise, size=clip.shape)
    return np.clip(clip, 0.0, 1.0)
