"""Consistent-hash shard placement with deterministic rebalancing.

The seed gallery places rows round-robin, which is perfectly balanced
but relocates *every* row when the node count changes.  The scale-out
serving work needs the classic consistent-hashing property instead:
growing from ``n`` to ``n + 1`` shards relocates only ``~1/(n+1)`` of
the keys, so a live rebalance touches a bounded slice of the gallery.

:class:`ConsistentHashRing` hashes ``vnodes`` virtual points per shard
onto a 64-bit ring with :func:`hashlib.blake2b` (stable across
processes and Python versions, unlike the builtin ``hash``) and assigns
each key to the first virtual point at or after the key's own hash.
Everything is deterministic in ``(num_nodes, vnodes, salt)``; two rings
built from the same parameters agree bit-for-bit.
"""

from __future__ import annotations

import bisect
import hashlib

_DIGEST_BYTES = 8


def stable_hash(text: str) -> int:
    """Map ``text`` to a 64-bit integer, stably across processes."""
    digest = hashlib.blake2b(text.encode("utf-8"),
                             digest_size=_DIGEST_BYTES).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Deterministic consistent-hash ring over ``num_nodes`` shards."""

    def __init__(self, num_nodes: int, *, vnodes: int = 128,
                 salt: str = "repro") -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.num_nodes = int(num_nodes)
        self.vnodes = int(vnodes)
        self.salt = str(salt)
        points: list[tuple[int, int]] = []
        for node in range(self.num_nodes):
            for replica in range(self.vnodes):
                point = stable_hash(f"{self.salt}/node-{node}#{replica}")
                points.append((point, node))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def assign(self, key: str) -> int:
        """Return the shard index owning ``key``."""
        point = stable_hash(f"{self.salt}/key/{key}")
        slot = bisect.bisect_right(self._hashes, point)
        if slot == len(self._hashes):
            slot = 0
        return self._owners[slot]

    def assign_many(self, keys: list[str]) -> list[int]:
        return [self.assign(key) for key in keys]

    def with_nodes(self, num_nodes: int) -> "ConsistentHashRing":
        """A ring over a different shard count, same salt/vnodes."""
        return ConsistentHashRing(num_nodes, vnodes=self.vnodes,
                                  salt=self.salt)

    def moved_fraction(self, other: "ConsistentHashRing",
                       keys: list[str]) -> float:
        """Fraction of ``keys`` whose owner differs between two rings."""
        if not keys:
            return 0.0
        moved = sum(1 for key in keys if self.assign(key) != other.assign(key))
        return moved / len(keys)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"ConsistentHashRing(num_nodes={self.num_nodes}, "
                f"vnodes={self.vnodes}, salt={self.salt!r})")


__all__ = ["ConsistentHashRing", "stable_hash"]
