"""The single ``Index`` protocol every searchable container implements.

Before this module, :class:`~repro.retrieval.index.FeatureIndex`,
:class:`~repro.retrieval.ann.IVFIndex`,
:class:`~repro.retrieval.nodes.DataNode`, and
:class:`~repro.retrieval.nodes.ShardedGallery` each grew their own
slightly-divergent surface (``IVFIndex`` had no ``search_batch``,
``DataNode`` had no ``add_batch``/``labels_of``).  They now share this
one structural protocol, so any of them can back a data node, a shard,
or a standalone gallery interchangeably — and tests can assert
conformance with ``isinstance(obj, Index)``.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.retrieval.lists import RetrievalEntry


@runtime_checkable
class Index(Protocol):
    """Uniform add/search surface over gallery rows.

    Semantics shared by all implementations:

    * ``add_batch`` mirrors ``zip()``: extra entries in any argument are
      ignored (the row count is the min of the three lengths).
    * ``search`` returns at most ``k`` entries, best first; an empty
      index returns an empty list.
    * ``search_batch`` over a ``(B, d)`` query matrix returns exactly
      the per-row results of ``B`` sequential ``search`` calls.
    """

    def __len__(self) -> int: ...

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None: ...

    def add_batch(self, ids: Sequence[str], labels: Sequence[int],
                  features: np.ndarray) -> None: ...

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]: ...

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]: ...

    def labels_of(self) -> list[int]: ...


__all__ = ["Index"]
