"""Retrieval result lists ``R^m(v)`` and their entries."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetrievalEntry:
    """One returned video: its id, label, and similarity score."""

    video_id: str
    label: int
    score: float


class RetrievalList:
    """An ordered retrieval result, most similar first.

    This is the *only* information the black-box threat model grants the
    attacker, so attack code should depend on nothing else.
    """

    def __init__(self, entries: list[RetrievalEntry]) -> None:
        self.entries = list(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    @property
    def ids(self) -> list[str]:
        """Video ids in rank order."""
        return [entry.video_id for entry in self.entries]

    @property
    def labels(self) -> list[int]:
        """Labels in rank order."""
        return [entry.label for entry in self.entries]

    def top(self, count: int) -> "RetrievalList":
        """Return the ``count`` best entries as a new list."""
        return RetrievalList(self.entries[:count])

    def __repr__(self) -> str:
        preview = ", ".join(self.ids[:3])
        suffix = ", ..." if len(self) > 3 else ""
        return f"RetrievalList([{preview}{suffix}], m={len(self)})"
