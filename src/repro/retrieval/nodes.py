"""Simulated distributed data nodes and the sharded gallery coordinator.

Paper Figure 1 shows the retrieval system locating "videos in various
distributed data nodes that are close to [the query] in the feature
space".  :class:`ShardedGallery` reproduces that topology in-process: the
gallery is sharded across ``num_nodes`` :class:`DataNode`s and a
coordinator performs scatter/gather top-k merging.  Nodes can be taken
down to test degraded retrieval, a
:class:`~repro.resilience.FaultPlan` can script richer incidents
(flakiness, slowness, score corruption, outage windows), and the
coordinator keeps a ``networkx`` star topology for introspection.

With a :class:`~repro.resilience.ResilienceConfig` the coordinator turns
into a self-healing retrieval plane:

* each row is stored on ``replication`` consecutive nodes, and the
  quorum-aware merge keeps retrieval **exact** while at least one
  replica of every shard is live;
* per-node calls run under retry-with-backoff and a circuit breaker;
* slow nodes are dropped from the merge when faster replicas cover
  their shards (hedged scatter reads);
* when coverage is lost the query either degrades (pre-resilience
  behaviour) or raises :class:`~repro.errors.RetrievalUnavailable` so
  attack loops can checkpoint and resume.

Online galleries (:meth:`ShardedGallery.enable_churn`) add live
mutation under traffic: :meth:`~ShardedGallery.delete` and
:meth:`~ShardedGallery.reembed` tombstone rows logically (physical rows
stay until :meth:`~ShardedGallery.compact`), every mutation bumps a
version counter, and readers pin an immutable
:class:`~repro.retrieval.snapshot.GallerySnapshot` so each query sees
exactly one gallery version even while writers race.  Placement is
round-robin by default or a deterministic
:class:`~repro.retrieval.placement.ConsistentHashRing`
(``placement="hash"``), which makes :meth:`~ShardedGallery.rebalance`
relocate only ``~1/n`` of the rows when the node count changes.
"""

from __future__ import annotations

import heapq
import threading
import time

import networkx as nx
import numpy as np

from repro.errors import DeadlineExceeded, NodeDownError, RetrievalUnavailable
from repro.obs import counter, histogram, span
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.retry import RetryExecutor
from repro.retrieval.index import FeatureIndex
from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.placement import ConsistentHashRing
from repro.retrieval.similarity import SimilarityFn, negative_l2
from repro.retrieval.snapshot import GallerySnapshot, filter_entries

#: Per-node search latencies are sub-millisecond at test scale.
NODE_LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


class DataNode:
    """One storage shard holding a local :class:`~repro.retrieval.protocol.Index`.

    The index implementation is pluggable: by default a brute-force
    :class:`FeatureIndex`, or any factory from the compressed tier
    registry (:mod:`repro.hashindex.tiers`) — the node only relies on
    the shared :class:`~repro.retrieval.protocol.Index` protocol.

    An installed ``fault_injector`` (usually a
    :class:`~repro.resilience.FaultPlan`) is consulted on every search
    attempt: it may raise :class:`NodeDownError`, add virtual latency
    (exposed as ``last_injected_latency_s``), or corrupt scores.
    """

    def __init__(self, node_id: str, similarity: SimilarityFn = negative_l2,
                 index_factory=None, position: int = 0) -> None:
        self.node_id = str(node_id)
        self.similarity = similarity
        self.index = FeatureIndex(similarity) if index_factory is None \
            else index_factory(similarity)
        self.position = int(position)
        self.alive = True
        self.search_count = 0
        self.fault_injector = None
        self.last_injected_latency_s = 0.0

    def reindex(self, index_factory) -> None:
        """Rebuild the local index under a new factory, keeping all rows.

        Every in-repo index buffers its rows (``_ids``/``_labels``/
        ``_features``), so a tier switch re-ingests them into the new
        index in one ``add_batch`` — compressed payloads then rebuild
        lazily on the next search.  Galleries no longer call this on
        their own nodes (they swap whole index sets atomically in
        :meth:`ShardedGallery.set_index_tier`); it remains for direct
        node-level use.
        """
        old = self.index
        new = index_factory(self.similarity)
        if len(old):
            new.add_batch(list(old._ids), list(old._labels),
                          np.stack(old._features))
        self.index = new

    def __len__(self) -> int:
        return len(self.index)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Store one gallery row on this node."""
        self.index.add(video_id, label, feature)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Store many gallery rows in one pass."""
        self.index.add_batch(ids, labels, features)

    def _pre_search(self) -> float:
        """Shared down/fault checks; returns injected latency."""
        if not self.alive:
            counter("gallery.node_down_errors", node=self.node_id).inc()
            raise NodeDownError(f"node {self.node_id} is down")
        injected = 0.0
        if self.fault_injector is not None:
            injected = self.fault_injector.on_attempt(self.node_id)
        self.last_injected_latency_s = injected
        return injected

    def search(self, query: np.ndarray, k: int,
               index=None) -> list[RetrievalEntry]:
        """Local top-k search; raises :class:`NodeDownError` when down.

        ``index`` lets the coordinator pin the index object it resolved
        at scatter start, so a concurrent tier swap cannot hand this
        search a half-built replacement.
        """
        self._pre_search()
        self.search_count += 1
        target = self.index if index is None else index
        entries = target.search(query, k)
        if self.fault_injector is not None:
            entries = self.fault_injector.transform(self.node_id, entries)
        return entries

    def search_batch(self, queries: np.ndarray, k: int,
                     index=None) -> list[list[RetrievalEntry]]:
        """Local top-k for ``(B, d)`` queries in one vectorized pass."""
        self._pre_search()
        self.search_count += len(queries)
        target = self.index if index is None else index
        results = target.search_batch(queries, k)
        if self.fault_injector is not None:
            results = [self.fault_injector.transform(self.node_id, entries)
                       for entries in results]
        return results

    def labels_of(self) -> list[int]:
        """All labels stored on this node."""
        return self.index.labels_of()

    def take_down(self) -> None:
        """Simulate a node failure."""
        self.alive = False

    def bring_up(self) -> None:
        """Recover a failed node."""
        self.alive = True


class ShardedGallery:
    """Coordinator over ``num_nodes`` data nodes with scatter/gather merge.

    Rows are assigned to shards round-robin at insertion time (or by a
    consistent-hash ring with ``placement="hash"``); with
    ``resilience.replication = r`` each row additionally lands on the
    next ``r - 1`` nodes.  A search fans out to all live nodes, takes
    each node's local top-k, and merges the partial lists into a global
    top-k (deduplicating replicas with a quorum score vote).  Downed
    nodes are skipped when their shards are covered elsewhere, so
    results degrade gracefully — or stay exact under replication —
    matching how a replicated production system keeps serving under
    partial failure.
    """

    def __init__(self, num_nodes: int = 4,
                 similarity: SimilarityFn = negative_l2,
                 resilience: ResilienceConfig | None = None,
                 index_tier: str | None = None,
                 placement: str = "round-robin") -> None:
        if num_nodes < 1:
            raise ValueError("gallery needs at least one node")
        if placement not in ("round-robin", "hash"):
            raise ValueError(f"unknown placement {placement!r}")
        self.similarity = similarity
        self.nodes = [DataNode(f"node-{i}", similarity, position=i)
                      for i in range(num_nodes)]
        self.placement = placement
        self._ring = ConsistentHashRing(num_nodes) if placement == "hash" \
            else None
        # --- mutation state (inert until enable_churn()) ----------- #
        self._mutable = False
        self._version = 0
        self._lock = threading.RLock()
        self._snapshot_cache: GallerySnapshot | None = None
        self._dead_at: dict[str, int] = {}    # rowid -> tombstone version
        self._added_at: dict[str, int] = {}   # rowid -> version added
        self._alias: dict[str, str] = {}      # rowid -> public id
        self._gen: dict[str, int] = {}        # public id -> generation
        self._live_rowid: dict[str, str] = {}  # public id -> live rowid
        self._primary_of: dict[str, int] = {}  # rowid -> primary shard
        self._order: list[str] = []           # rowids in insertion order
        self._node_dead: list[set[str]] = [set() for _ in range(num_nodes)]
        self._dead_count = 0
        # Index objects currently installed, pinned as a tuple so
        # readers resolve one coherent set even mid tier-swap.
        self._pinned: tuple = tuple(node.index for node in self.nodes)
        self.index_tier = "exact"
        self.set_index_tier(index_tier)
        self._next_shard = 0
        self._row_count = 0
        self._labels: list[int] = []
        self._shard_rows = [0] * num_nodes
        self.fault_plan = None
        self.replication = 1
        self.resilience: ResilienceConfig | None = None
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retries: dict[str, RetryExecutor] = {}
        self.set_resilience(resilience)
        self._rebuild_topology()
        if placement == "hash":
            # Hash placement exists for live rebalancing, which needs
            # the per-row bookkeeping churn mode maintains.
            self.enable_churn()

    def _rebuild_topology(self) -> None:
        topology = nx.star_graph(len(self.nodes))
        relabel = {0: "coordinator"}
        relabel.update({i + 1: node.node_id
                        for i, node in enumerate(self.nodes)})
        self.topology = nx.relabel_nodes(topology, relabel)

    # -------------------------------------------------------------- #
    # Index-tier configuration
    # -------------------------------------------------------------- #
    def set_index_tier(self, tier: str | None) -> None:
        """Switch every node's local index to ``tier``.

        ``None`` resolves the ``REPRO_INDEX_TIER`` environment default
        (``"exact"`` when unset — seed behaviour).  Rows already stored
        on the nodes are re-ingested into the new indexes (tombstoned
        rows are dropped, doubling as a compaction); compressed payloads
        rebuild lazily on the next search.  Switching to the tier
        already in place is a no-op.

        The swap is atomic with respect to readers: every new index is
        fully built *before* any node's reference is replaced, and
        in-flight searches keep the complete old index set they pinned
        at scatter start, so no query ever observes a half-built index
        or a mixed-tier scatter.
        """
        # Imported lazily: repro.hashindex depends on retrieval
        # submodules, so a module-level import would be circular during
        # package initialization.
        from repro.hashindex.tiers import default_index_tier, resolve_index_tier

        resolved = default_index_tier() if tier is None \
            else str(tier).strip().lower()
        if resolved == self.index_tier:
            return
        factory = resolve_index_tier(resolved)
        with self._lock:
            new_indexes = []
            for position, node in enumerate(self.nodes):
                old = node.index
                new = factory(self.similarity)
                dead = self._node_dead[position] if self._mutable else ()
                if len(old):
                    if dead:
                        keep = [row for row, rowid in enumerate(old._ids)
                                if rowid not in dead]
                        if keep:
                            new.add_batch(
                                [old._ids[row] for row in keep],
                                [old._labels[row] for row in keep],
                                np.stack([old._features[row]
                                          for row in keep]))
                    else:
                        new.add_batch(list(old._ids), list(old._labels),
                                      np.stack(old._features))
                new_indexes.append(new)
            for node, new in zip(self.nodes, new_indexes):
                node.index = new
            if self._mutable:
                self._node_dead = [set() for _ in self.nodes]
            self._pinned = tuple(new_indexes)
            self.index_tier = resolved
            if self._mutable:
                self._bump()
        counter("gallery.index_tier_switches", tier=resolved).inc()

    # -------------------------------------------------------------- #
    # Resilience configuration
    # -------------------------------------------------------------- #
    def set_resilience(self, config: ResilienceConfig | None) -> None:
        """(Re)configure retry/breaker/replication behaviour.

        Replication is a *placement* property: it can only change while
        the gallery is still empty.
        """
        replication = 1 if config is None else min(int(config.replication),
                                                   len(self.nodes))
        if self._row_count and replication != self.replication:
            raise ValueError(
                "cannot change replication on a populated gallery "
                f"(current r={self.replication}, requested r={replication})")
        self.resilience = config
        self.replication = replication
        self._breakers = {}
        self._retries = {}
        if config is not None:
            if config.breaker is not None:
                self._breakers = {
                    node.node_id: CircuitBreaker(config.breaker,
                                                 node_id=node.node_id)
                    for node in self.nodes
                }
            if config.retry is not None:
                self._retries = {
                    node.node_id: RetryExecutor(config.retry,
                                                node_id=node.node_id)
                    for node in self.nodes
                }
        # Per-node scatter plan, precomputed so the hot path does no
        # dict lookups: [(node, breaker | None, retry | None), ...].
        self._node_plan = [
            (node, self._breakers.get(node.node_id),
             self._retries.get(node.node_id))
            for node in self.nodes
        ]

    def __len__(self) -> int:
        """Live logical gallery size (replicas and tombstones excluded)."""
        return self._row_count - self._dead_count

    @property
    def physical_rows(self) -> int:
        """Stored rows across every shard, replicas and tombstones included."""
        return sum(len(node) for node in self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def live_nodes(self) -> list[DataNode]:
        return [node for node in self.nodes if node.alive]

    @property
    def version(self) -> int:
        """Monotonic mutation counter (0 until the first mutation)."""
        return self._version

    def _replica_nodes(self, primary: int) -> list[int]:
        """Node indexes storing rows whose primary shard is ``primary``."""
        count = len(self.nodes)
        return [(primary + t) % count for t in range(self.replication)]

    # -------------------------------------------------------------- #
    # Ingest
    # -------------------------------------------------------------- #
    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Insert one row on the next shard and its replicas."""
        if self._mutable:
            self._add_mutable(str(video_id), int(label), feature)
            return
        primary = self._next_shard
        for node_index in self._replica_nodes(primary):
            self.nodes[node_index].add(video_id, label, feature)
        self._shard_rows[primary] += 1
        self._labels.append(int(label))
        self._row_count += 1
        self._next_shard = (primary + 1) % len(self.nodes)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Insert many rows, spread across shards (and their replicas).

        Rows land on exactly the shards sequential :meth:`add` calls
        would pick (round-robin from the current cursor), but each shard
        ingests its slice in one :meth:`FeatureIndex.add_batch` call.
        Mutable galleries fall back to per-row inserts to keep the
        version/bookkeeping invariants simple.
        """
        count = min(len(ids), len(labels), len(features))
        if count == 0:
            return
        if self._mutable:
            for row in range(count):
                self._add_mutable(str(ids[row]), int(labels[row]),
                                  features[row])
            return
        features = np.asarray(features[:count], dtype=np.float64)
        num_nodes = len(self.nodes)
        start = self._next_shard
        for replica in range(self.replication):
            shifted = (start + replica) % num_nodes
            for node_offset in range(min(num_nodes, count)):
                node = self.nodes[(shifted + node_offset) % num_nodes]
                rows = range(node_offset, count, num_nodes)
                node.index.add_batch(
                    [ids[row] for row in rows],
                    [labels[row] for row in rows],
                    features[node_offset::num_nodes],
                )
        for row in range(count):
            self._shard_rows[(start + row) % num_nodes] += 1
        self._labels.extend(int(label) for label in labels[:count])
        self._row_count += count
        self._next_shard = (start + count) % num_nodes

    # -------------------------------------------------------------- #
    # Online mutation (churn)
    # -------------------------------------------------------------- #
    def enable_churn(self) -> None:
        """Turn on live mutation: versioned snapshots, delete/reembed.

        A gallery populated round-robin with ``replication == 1`` can be
        switched on in place (placement is recoverable from the cursor
        arithmetic); replicated galleries must enable churn before
        ingesting rows.  Idempotent.
        """
        if self._mutable:
            return
        with self._lock:
            if self._mutable:
                return
            if self._row_count:
                if self.replication != 1:
                    raise ValueError(
                        "enable_churn() on a populated gallery requires "
                        "replication=1; enable churn before ingesting")
                num_nodes = len(self.nodes)
                for seq in range(self._row_count):
                    node_index = seq % num_nodes
                    rowid = self.nodes[node_index].index._ids[seq // num_nodes]
                    self._live_rowid[rowid] = rowid
                    self._gen[rowid] = 0
                    self._primary_of[rowid] = node_index
                    self._order.append(rowid)
            self._mutable = True
            self._snapshot_cache = None

    @property
    def mutable(self) -> bool:
        return self._mutable

    def _require_mutable(self, operation: str) -> None:
        if not self._mutable:
            raise RuntimeError(
                f"{operation}() requires enable_churn() on this gallery")

    def _bump(self) -> None:
        self._version += 1
        self._snapshot_cache = None

    def _place(self, public_id: str) -> int:
        if self._ring is not None:
            return self._ring.assign(public_id)
        return self._next_shard

    def _new_rowid(self, public_id: str) -> str:
        generation = self._gen.get(public_id, -1) + 1
        self._gen[public_id] = generation
        if generation == 0:
            return public_id
        rowid = f"{public_id}@g{generation}"
        self._alias[rowid] = public_id
        return rowid

    def _insert_row(self, public_id: str, label: int,
                    feature: np.ndarray) -> None:
        """Shared mutable-insert path; caller holds the lock."""
        rowid = self._new_rowid(public_id)
        primary = self._place(public_id)
        for node_index in self._replica_nodes(primary):
            self.nodes[node_index].add(rowid, label, feature)
        self._shard_rows[primary] += 1
        self._labels.append(int(label))
        self._order.append(rowid)
        self._row_count += 1
        if self._ring is None:
            self._next_shard = (primary + 1) % len(self.nodes)
        self._live_rowid[public_id] = rowid
        self._primary_of[rowid] = primary
        self._added_at[rowid] = self._version + 1

    def _add_mutable(self, public_id: str, label: int,
                     feature: np.ndarray) -> None:
        with self._lock:
            if public_id in self._live_rowid:
                raise ValueError(
                    f"video {public_id!r} is already live; use reembed()")
            self._insert_row(public_id, label, feature)
            counter("gallery.adds").inc()
            self._bump()

    def _tombstone(self, rowid: str) -> None:
        primary = self._primary_of[rowid]
        self._dead_at[rowid] = self._version + 1
        for node_index in self._replica_nodes(primary):
            self._node_dead[node_index].add(rowid)
        self._shard_rows[primary] -= 1
        self._dead_count += 1

    def delete(self, video_id: str) -> None:
        """Tombstone a live video; physical rows remain until compaction."""
        self._require_mutable("delete")
        with self._lock:
            public_id = str(video_id)
            rowid = self._live_rowid.pop(public_id, None)
            if rowid is None:
                raise KeyError(f"video {public_id!r} is not live")
            self._tombstone(rowid)
            counter("gallery.deletes").inc()
            self._bump()

    def reembed(self, video_id: str, label: int,
                feature: np.ndarray) -> None:
        """Replace a live video's feature row in one atomic version step.

        The old generation is tombstoned and a new aliased row inserted;
        snapshots taken before the call keep seeing the old feature,
        snapshots taken after see only the new one.
        """
        self._require_mutable("reembed")
        with self._lock:
            public_id = str(video_id)
            old_rowid = self._live_rowid.get(public_id)
            if old_rowid is None:
                raise KeyError(f"video {public_id!r} is not live")
            self._tombstone(old_rowid)
            self._insert_row(public_id, int(label), feature)
            counter("gallery.reembeds").inc()
            self._bump()

    def snapshot(self) -> GallerySnapshot:
        """An immutable view of the current gallery version."""
        self._require_mutable("snapshot")
        snap = self._snapshot_cache
        if snap is not None and snap.version == self._version:
            return snap
        with self._lock:
            snap = self._snapshot_cache
            if snap is not None and snap.version == self._version:
                return snap
            indexes = self._pinned
            snap = GallerySnapshot(
                version=self._version,
                indexes=indexes,
                watermarks=tuple(len(index) for index in indexes),
                node_dead=tuple(len(dead) for dead in self._node_dead),
                dead_at=self._dead_at,
                added_at=self._added_at,
                alias=self._alias,
                live_count=self._row_count - self._dead_count,
                tier=self.index_tier,
            )
            self._snapshot_cache = snap
            return snap

    def is_visible(self, video_id: str, version: int) -> bool:
        """Whether ``video_id`` had a live generation at ``version``."""
        public_id = str(video_id)
        generation = self._gen.get(public_id)
        if generation is None:
            return False
        for gen in range(generation + 1):
            rowid = public_id if gen == 0 else f"{public_id}@g{gen}"
            if self._added_at.get(rowid, 0) > version:
                continue
            dead = self._dead_at.get(rowid)
            if dead is None or dead > version:
                return True
        return False

    def live_ids(self) -> list[str]:
        """Public ids of all live videos, in insertion order."""
        self._require_mutable("live_ids")
        with self._lock:
            return [self._alias.get(rowid, rowid) for rowid in self._order
                    if self._dead_at.get(rowid) is None]

    # -------------------------------------------------------------- #
    # Compaction & rebalancing
    # -------------------------------------------------------------- #
    def compact(self, node_indexes: list[int] | None = None) -> int:
        """Rebuild shards from live rows only; returns rows dropped.

        Each rebuilt index is fully constructed before its node's
        reference is swapped, and the pinned tuple is replaced last, so
        readers holding older snapshots keep searching the uncompacted
        indexes they pinned.
        """
        self._require_mutable("compact")
        from repro.hashindex.tiers import resolve_index_tier

        with self._lock:
            candidates = range(len(self.nodes)) if node_indexes is None \
                else node_indexes
            targets = [index for index in candidates if self._node_dead[index]]
            if not targets:
                return 0
            factory = resolve_index_tier(self.index_tier)
            dropped = 0
            for position in targets:
                node = self.nodes[position]
                old = node.index
                dead = self._node_dead[position]
                keep = [row for row, rowid in enumerate(old._ids)
                        if rowid not in dead]
                new = factory(self.similarity)
                if keep:
                    new.add_batch(
                        [old._ids[row] for row in keep],
                        [old._labels[row] for row in keep],
                        np.stack([old._features[row] for row in keep]))
                node.index = new
                dropped += len(old) - len(keep)
                self._node_dead[position] = set()
            self._pinned = tuple(node.index for node in self.nodes)
            counter("gallery.compactions").inc(len(targets))
            counter("gallery.compacted_rows").inc(dropped)
            self._bump()
            return dropped

    def maybe_compact(self, policy) -> int:
        """Compact shards the :class:`CompactionPolicy` flags; rows dropped."""
        if policy is None or not self._mutable:
            return 0
        targets = [position for position, node in enumerate(self.nodes)
                   if policy.should_compact(len(node.index),
                                            len(self._node_dead[position]))]
        if not targets:
            return 0
        return self.compact(targets)

    def rebalance(self, num_nodes: int) -> int:
        """Re-shard live rows onto ``num_nodes`` nodes; returns rows moved.

        Requires ``placement="hash"``: the new ring agrees with the old
        one on all but ``~1/num_nodes`` of the keys, so only that slice
        relocates.  Outstanding snapshots keep their old index set and
        remain exact as long as the node count did not shrink.
        """
        self._require_mutable("rebalance")
        if self._ring is None:
            raise RuntimeError("rebalance() requires placement='hash'")
        if num_nodes < 1:
            raise ValueError("gallery needs at least one node")
        from repro.hashindex.tiers import resolve_index_tier

        with self._lock:
            new_ring = self._ring.with_nodes(num_nodes)
            rows: dict[str, tuple[int, np.ndarray]] = {}
            for node in self.nodes:
                index = node.index
                for rowid, label, feature in zip(index._ids, index._labels,
                                                 index._features):
                    rows.setdefault(rowid, (label, feature))
            factory = resolve_index_tier(self.index_tier)
            exact = self.index_tier == "exact"
            nodes = [DataNode(f"node-{i}", self.similarity, position=i,
                              index_factory=None if exact else factory)
                     for i in range(num_nodes)]
            live = [rowid for rowid in self._order
                    if self._dead_at.get(rowid) is None]
            live_labels = [label for rowid, label
                           in zip(self._order, self._labels)
                           if self._dead_at.get(rowid) is None]
            shard_rows = [0] * num_nodes
            primary_of: dict[str, int] = {}
            moved = 0
            replication = min(self.replication, num_nodes)
            for rowid, label in zip(live, live_labels):
                public_id = self._alias.get(rowid, rowid)
                primary = new_ring.assign(public_id)
                if primary != self._primary_of.get(rowid):
                    moved += 1
                feature = rows[rowid][1]
                for tail in range(replication):
                    nodes[(primary + tail) % num_nodes].add(
                        rowid, label, feature)
                shard_rows[primary] += 1
                primary_of[rowid] = primary
            self.nodes = nodes
            self._ring = new_ring
            self._shard_rows = shard_rows
            self._primary_of = primary_of
            self._node_dead = [set() for _ in range(num_nodes)]
            self._row_count = len(live)
            self._dead_count = 0
            self._order = live
            self._labels = live_labels
            self._pinned = tuple(node.index for node in self.nodes)
            self.replication = replication
            self.set_resilience(self.resilience)
            self._rebuild_topology()
            counter("gallery.rebalances").inc()
            counter("gallery.rebalance_moved_rows").inc(moved)
            self._bump()
            return moved

    # -------------------------------------------------------------- #
    # Scatter/gather search
    # -------------------------------------------------------------- #
    def _resolve_snapshot(self, snapshot: GallerySnapshot | None
                          ) -> GallerySnapshot | None:
        if snapshot is not None:
            return snapshot
        if self._mutable and self._version > 0:
            return self.snapshot()
        return None

    def search(self, query: np.ndarray, k: int,
               snapshot: GallerySnapshot | None = None
               ) -> list[RetrievalEntry]:
        """Scatter/gather top-k across live nodes, best first.

        With ``snapshot`` (or on any mutated gallery) the search is
        evaluated against exactly one gallery version.
        """
        snap = self._resolve_snapshot(snapshot)
        if self.fault_plan is not None:
            self.fault_plan.advance(1)
        with span("gallery.search", k=int(k)):
            scatter = self._scatter_plain if self.resilience is None \
                else self._scatter_resilient
            pinned = self._pinned if snap is None else None
            partials = scatter(
                lambda node: [self._node_search(node, query, k, snap,
                                                pinned)])
            merged = self._merge([lists[0] for lists in partials], k)
            counter("gallery.searches").inc()
            return merged

    def search_batch(self, queries: np.ndarray, k: int,
                     snapshot: GallerySnapshot | None = None
                     ) -> list[list[RetrievalEntry]]:
        """Scatter/gather top-k for a ``(B, d)`` query matrix.

        Each live node scores the whole batch in one vectorized pass; the
        coordinator then merges partial lists per query.  Results are
        identical to B sequential :meth:`search` calls.
        """
        queries = np.asarray(queries, dtype=np.float64)
        batch = queries.shape[0]
        snap = self._resolve_snapshot(snapshot)
        if self.fault_plan is not None:
            self.fault_plan.advance(batch)
        with span("gallery.search_batch", k=int(k), batch=batch):
            scatter = self._scatter_plain if self.resilience is None \
                else self._scatter_resilient
            pinned = self._pinned if snap is None else None
            node_results = scatter(
                lambda node: self._node_search_batch(node, queries, k, snap,
                                                     pinned),
                weight=batch)
            merged_lists = [
                self._merge([results[query_idx] for results in node_results],
                            k)
                for query_idx in range(batch)
            ]
            counter("gallery.searches").inc(batch)
            return merged_lists

    def _node_search(self, node: DataNode, query: np.ndarray, k: int,
                     snap: GallerySnapshot | None,
                     pinned) -> list[RetrievalEntry]:
        if snap is None:
            return node.search(query, k, index=pinned[node.position])
        node._pre_search()
        node.search_count += 1
        entries = self._snapshot_search_one(snap, node.position, query, k)
        if node.fault_injector is not None:
            entries = node.fault_injector.transform(node.node_id, entries)
        return entries

    def _node_search_batch(self, node: DataNode, queries: np.ndarray, k: int,
                           snap: GallerySnapshot | None,
                           pinned) -> list[list[RetrievalEntry]]:
        if snap is None:
            return node.search_batch(queries, k, index=pinned[node.position])
        node._pre_search()
        node.search_count += len(queries)
        results = self._snapshot_search_batch(snap, node.position, queries, k)
        if node.fault_injector is not None:
            results = [node.fault_injector.transform(node.node_id, entries)
                       for entries in results]
        return results

    def _snapshot_search_one(self, snap: GallerySnapshot, position: int,
                             query: np.ndarray, k: int
                             ) -> list[RetrievalEntry]:
        if position >= len(snap.indexes):
            # The gallery grew past the snapshot's node count (rebalance
            # while this query was in flight); new nodes hold no rows
            # visible at the snapshot's version.
            return []
        index = snap.indexes[position]
        watermark = snap.watermarks[position]
        fetch = int(k) + snap.node_dead[position]
        if hasattr(index, "search_limited"):
            raw = index.search_limited(query, fetch, watermark)
        else:
            # Compressed tiers cannot cap scored rows, so over-fetch by
            # the rows appended past the watermark and filter instead.
            fetch += max(0, len(index) - watermark)
            raw = index.search(query, fetch)
        return filter_entries(raw, snap, int(k), RetrievalEntry)

    def _snapshot_search_batch(self, snap: GallerySnapshot, position: int,
                               queries: np.ndarray, k: int
                               ) -> list[list[RetrievalEntry]]:
        if position >= len(snap.indexes):
            return [[] for _ in range(len(queries))]
        index = snap.indexes[position]
        watermark = snap.watermarks[position]
        fetch = int(k) + snap.node_dead[position]
        if hasattr(index, "search_batch_limited"):
            raw_lists = index.search_batch_limited(queries, fetch, watermark)
        else:
            fetch += max(0, len(index) - watermark)
            raw_lists = index.search_batch(queries, fetch)
        return [filter_entries(raw, snap, int(k), RetrievalEntry)
                for raw in raw_lists]

    # -------------------------------------------------------------- #
    # Scatter strategies
    # -------------------------------------------------------------- #
    def _scatter_plain(self, call, weight: int = 1) -> list:
        """Pre-resilience behaviour: skip failing nodes, serve the rest."""
        partials = []
        for node in self.nodes:
            if not node.alive:
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            start = time.perf_counter()
            try:
                results = call(node)
            except NodeDownError:
                # A fault injector flaked the node mid-scatter; without a
                # resilience config this degrades exactly like a downed
                # node instead of failing the whole query.
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            partials.append(results)
            histogram("gallery.node_latency_s",
                      buckets=NODE_LATENCY_BUCKETS,
                      node=node.node_id).observe(
                          time.perf_counter() - start)
        if not partials and self._row_count:
            # Zero live nodes is not a degraded answer — it is no answer.
            # Mirror the resilient scatter's coverage-loss behaviour
            # instead of silently returning an empty retrieval list (an
            # attacker would read that as "the gallery is empty").
            counter("resilience.uncovered_queries").inc(weight)
            raise RetrievalUnavailable(
                "no live node answered the scatter "
                f"({self._row_count} rows unreachable)")
        if len(partials) < len(self.nodes):
            counter("gallery.degraded_searches").inc(weight)
        return partials

    def _scatter_resilient(self, call, weight: int = 1) -> list:
        """Retry + breaker + deadline + hedged scatter over all nodes."""
        config = self.resilience
        results: dict[int, list] = {}
        latencies: dict[int, float] = {}
        for index, (node, breaker, retry) in enumerate(self._node_plan):
            if breaker is not None and not breaker.allow():
                counter("resilience.breaker_short_circuits",
                        node=node.node_id).inc()
                continue
            try:
                value, latency = self._attempt_node(node, call, retry)
            except (NodeDownError, DeadlineExceeded):
                if breaker is not None:
                    breaker.record_failure()
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            if breaker is not None:
                breaker.record_success()
            results[index] = value
            latencies[index] = latency
            histogram("gallery.node_latency_s",
                      buckets=NODE_LATENCY_BUCKETS,
                      node=node.node_id).observe(latency)

        # Hedged reads: drop slow nodes whose shards faster replicas
        # already cover (the replica responses are the hedge).
        if config.hedge_after_s is not None:
            for index in sorted(results):
                if latencies[index] <= config.hedge_after_s:
                    continue
                node_id = self.nodes[index].node_id
                if self._covers_all_shards(set(results) - {index}):
                    del results[index]
                    counter("resilience.hedge_wins", node=node_id).inc()
                else:
                    counter("resilience.hedge_losses", node=node_id).inc()

        if not self._covers_all_shards(set(results)):
            counter("resilience.uncovered_queries").inc(weight)
            if config.on_data_loss == "raise":
                missing = [
                    primary for primary in range(len(self.nodes))
                    if self._shard_rows[primary]
                    and not any(replica in results
                                for replica in self._replica_nodes(primary))
                ]
                raise RetrievalUnavailable(
                    f"no live replica for shard(s) {missing}")
            counter("gallery.degraded_searches").inc(weight)
        elif len(results) < len(self.nodes):
            counter("resilience.degraded_covered_queries").inc(weight)
        return [results[index] for index in sorted(results)]

    def _attempt_node(self, node: DataNode, call, retry: RetryExecutor | None):
        """One node's scatter leg under retry and the per-query deadline."""
        config = self.resilience

        def attempt():
            start = time.perf_counter()
            value = call(node)
            latency = (time.perf_counter() - start
                       + node.last_injected_latency_s)
            if config.deadline_s is not None and latency > config.deadline_s:
                counter("resilience.deadline_exceeded",
                        node=node.node_id).inc()
                raise DeadlineExceeded(
                    f"node {node.node_id} answered in {latency:.4f}s "
                    f"(> deadline {config.deadline_s}s)")
            return value, latency

        if retry is None:
            return attempt()
        return retry.run(attempt)

    def _covers_all_shards(self, available: set[int]) -> bool:
        """Whether every non-empty shard has a replica in ``available``."""
        if len(available) == len(self.nodes):
            return True  # every node answered — trivially covered
        return all(
            rows == 0
            or any(replica in available
                   for replica in self._replica_nodes(primary))
            for primary, rows in enumerate(self._shard_rows)
        )

    # -------------------------------------------------------------- #
    # Merge
    # -------------------------------------------------------------- #
    def _merge(self, partials: list[list[RetrievalEntry]],
               k: int) -> list[RetrievalEntry]:
        """Merge per-node top-k lists into the global top-k, best first.

        Without replication this is a plain ordered merge.  With
        replication, the same row may arrive from several replicas; the
        merge deduplicates by video id and resolves score disagreements
        (a corrupt replica) by majority vote — the first-seen score wins
        ties, and a disagreement increments
        ``resilience.quorum_mismatches``.
        """
        merged = heapq.merge(*partials, key=lambda entry: -entry.score)
        if self.replication == 1:
            return list(merged)[: int(k)]
        votes: dict[str, dict[float, int]] = {}
        first: dict[str, tuple[int, RetrievalEntry]] = {}
        for position, entry in enumerate(merged):
            votes.setdefault(entry.video_id, {})
            scores = votes[entry.video_id]
            scores[entry.score] = scores.get(entry.score, 0) + 1
            if entry.video_id not in first:
                first[entry.video_id] = (position, entry)
        resolved = []
        for video_id, scores in votes.items():
            if len(scores) > 1:
                counter("resilience.quorum_mismatches").inc()
            score = max(scores.items(), key=lambda item: item[1])[0]
            position, entry = first[video_id]
            resolved.append((-score, position,
                             RetrievalEntry(video_id, entry.label, score)))
        resolved.sort(key=lambda item: (item[0], item[1]))
        return [entry for _, _, entry in resolved[: int(k)]]

    def labels_of(self) -> list[int]:
        """All live logical labels, in insertion order (replicas deduped)."""
        if not self._mutable or not self._dead_count:
            return list(self._labels)
        return [label for rowid, label in zip(self._order, self._labels)
                if self._dead_at.get(rowid) is None]
