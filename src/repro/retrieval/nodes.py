"""Simulated distributed data nodes and the sharded gallery coordinator.

Paper Figure 1 shows the retrieval system locating "videos in various
distributed data nodes that are close to [the query] in the feature
space".  :class:`ShardedGallery` reproduces that topology in-process: the
gallery is sharded across ``num_nodes`` :class:`DataNode`s and a
coordinator performs scatter/gather top-k merging.  Nodes can be taken
down to test degraded retrieval, a
:class:`~repro.resilience.FaultPlan` can script richer incidents
(flakiness, slowness, score corruption, outage windows), and the
coordinator keeps a ``networkx`` star topology for introspection.

With a :class:`~repro.resilience.ResilienceConfig` the coordinator turns
into a self-healing retrieval plane:

* each row is stored on ``replication`` consecutive nodes, and the
  quorum-aware merge keeps retrieval **exact** while at least one
  replica of every shard is live;
* per-node calls run under retry-with-backoff and a circuit breaker;
* slow nodes are dropped from the merge when faster replicas cover
  their shards (hedged scatter reads);
* when coverage is lost the query either degrades (pre-resilience
  behaviour) or raises :class:`~repro.errors.RetrievalUnavailable` so
  attack loops can checkpoint and resume.
"""

from __future__ import annotations

import heapq
import time

import networkx as nx
import numpy as np

from repro.errors import DeadlineExceeded, NodeDownError, RetrievalUnavailable
from repro.obs import counter, histogram, span
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.config import ResilienceConfig
from repro.resilience.retry import RetryExecutor
from repro.retrieval.index import FeatureIndex
from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, negative_l2

#: Per-node search latencies are sub-millisecond at test scale.
NODE_LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


class DataNode:
    """One storage shard holding a local :class:`~repro.retrieval.protocol.Index`.

    The index implementation is pluggable: by default a brute-force
    :class:`FeatureIndex`, or any factory from the compressed tier
    registry (:mod:`repro.hashindex.tiers`) — the node only relies on
    the shared :class:`~repro.retrieval.protocol.Index` protocol.

    An installed ``fault_injector`` (usually a
    :class:`~repro.resilience.FaultPlan`) is consulted on every search
    attempt: it may raise :class:`NodeDownError`, add virtual latency
    (exposed as ``last_injected_latency_s``), or corrupt scores.
    """

    def __init__(self, node_id: str, similarity: SimilarityFn = negative_l2,
                 index_factory=None) -> None:
        self.node_id = str(node_id)
        self.similarity = similarity
        self.index = FeatureIndex(similarity) if index_factory is None \
            else index_factory(similarity)
        self.alive = True
        self.search_count = 0
        self.fault_injector = None
        self.last_injected_latency_s = 0.0

    def reindex(self, index_factory) -> None:
        """Rebuild the local index under a new factory, keeping all rows.

        Every in-repo index buffers its rows (``_ids``/``_labels``/
        ``_features``), so a tier switch re-ingests them into the new
        index in one ``add_batch`` — compressed payloads then rebuild
        lazily on the next search.
        """
        old = self.index
        new = index_factory(self.similarity)
        if len(old):
            new.add_batch(list(old._ids), list(old._labels),
                          np.stack(old._features))
        self.index = new

    def __len__(self) -> int:
        return len(self.index)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Store one gallery row on this node."""
        self.index.add(video_id, label, feature)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Store many gallery rows in one pass."""
        self.index.add_batch(ids, labels, features)

    def _pre_search(self) -> float:
        """Shared down/fault checks; returns injected latency."""
        if not self.alive:
            counter("gallery.node_down_errors", node=self.node_id).inc()
            raise NodeDownError(f"node {self.node_id} is down")
        injected = 0.0
        if self.fault_injector is not None:
            injected = self.fault_injector.on_attempt(self.node_id)
        self.last_injected_latency_s = injected
        return injected

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Local top-k search; raises :class:`NodeDownError` when down."""
        self._pre_search()
        self.search_count += 1
        entries = self.index.search(query, k)
        if self.fault_injector is not None:
            entries = self.fault_injector.transform(self.node_id, entries)
        return entries

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Local top-k for ``(B, d)`` queries in one vectorized pass."""
        self._pre_search()
        self.search_count += len(queries)
        results = self.index.search_batch(queries, k)
        if self.fault_injector is not None:
            results = [self.fault_injector.transform(self.node_id, entries)
                       for entries in results]
        return results

    def labels_of(self) -> list[int]:
        """All labels stored on this node."""
        return self.index.labels_of()

    def take_down(self) -> None:
        """Simulate a node failure."""
        self.alive = False

    def bring_up(self) -> None:
        """Recover a failed node."""
        self.alive = True


class ShardedGallery:
    """Coordinator over ``num_nodes`` data nodes with scatter/gather merge.

    Rows are assigned to shards round-robin at insertion time; with
    ``resilience.replication = r`` each row additionally lands on the
    next ``r - 1`` nodes.  A search fans out to all live nodes, takes
    each node's local top-k, and merges the partial lists into a global
    top-k (deduplicating replicas with a quorum score vote).  Downed
    nodes are skipped when their shards are covered elsewhere, so
    results degrade gracefully — or stay exact under replication —
    matching how a replicated production system keeps serving under
    partial failure.
    """

    def __init__(self, num_nodes: int = 4,
                 similarity: SimilarityFn = negative_l2,
                 resilience: ResilienceConfig | None = None,
                 index_tier: str | None = None) -> None:
        if num_nodes < 1:
            raise ValueError("gallery needs at least one node")
        self.similarity = similarity
        self.nodes = [DataNode(f"node-{i}", similarity) for i in range(num_nodes)]
        self.index_tier = "exact"
        self.set_index_tier(index_tier)
        self._next_shard = 0
        self._row_count = 0
        self._labels: list[int] = []
        self._shard_rows = [0] * num_nodes
        self.fault_plan = None
        self.replication = 1
        self.resilience: ResilienceConfig | None = None
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retries: dict[str, RetryExecutor] = {}
        self.set_resilience(resilience)
        self.topology = nx.star_graph(num_nodes)
        relabel = {0: "coordinator"}
        relabel.update({i + 1: node.node_id for i, node in enumerate(self.nodes)})
        self.topology = nx.relabel_nodes(self.topology, relabel)

    # -------------------------------------------------------------- #
    # Index-tier configuration
    # -------------------------------------------------------------- #
    def set_index_tier(self, tier: str | None) -> None:
        """Switch every node's local index to ``tier``.

        ``None`` resolves the ``REPRO_INDEX_TIER`` environment default
        (``"exact"`` when unset — seed behaviour).  Rows already stored
        on the nodes are re-ingested into the new indexes; compressed
        payloads rebuild lazily on the next search.  Switching to the
        tier already in place is a no-op.
        """
        # Imported lazily: repro.hashindex depends on retrieval
        # submodules, so a module-level import would be circular during
        # package initialization.
        from repro.hashindex.tiers import default_index_tier, resolve_index_tier

        resolved = default_index_tier() if tier is None \
            else str(tier).strip().lower()
        if resolved == self.index_tier:
            return
        factory = resolve_index_tier(resolved)
        for node in self.nodes:
            node.reindex(factory)
        self.index_tier = resolved
        counter("gallery.index_tier_switches", tier=resolved).inc()

    # -------------------------------------------------------------- #
    # Resilience configuration
    # -------------------------------------------------------------- #
    def set_resilience(self, config: ResilienceConfig | None) -> None:
        """(Re)configure retry/breaker/replication behaviour.

        Replication is a *placement* property: it can only change while
        the gallery is still empty.
        """
        replication = 1 if config is None else min(int(config.replication),
                                                   len(self.nodes))
        if self._row_count and replication != self.replication:
            raise ValueError(
                "cannot change replication on a populated gallery "
                f"(current r={self.replication}, requested r={replication})")
        self.resilience = config
        self.replication = replication
        self._breakers = {}
        self._retries = {}
        if config is not None:
            if config.breaker is not None:
                self._breakers = {
                    node.node_id: CircuitBreaker(config.breaker,
                                                 node_id=node.node_id)
                    for node in self.nodes
                }
            if config.retry is not None:
                self._retries = {
                    node.node_id: RetryExecutor(config.retry,
                                                node_id=node.node_id)
                    for node in self.nodes
                }
        # Per-node scatter plan, precomputed so the hot path does no
        # dict lookups: [(node, breaker | None, retry | None), ...].
        self._node_plan = [
            (node, self._breakers.get(node.node_id),
             self._retries.get(node.node_id))
            for node in self.nodes
        ]

    def __len__(self) -> int:
        """Logical gallery size (replicas are not double-counted)."""
        return self._row_count

    @property
    def physical_rows(self) -> int:
        """Stored rows across every shard, replicas included."""
        return sum(len(node) for node in self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def live_nodes(self) -> list[DataNode]:
        return [node for node in self.nodes if node.alive]

    def _replica_nodes(self, primary: int) -> list[int]:
        """Node indexes storing rows whose primary shard is ``primary``."""
        count = len(self.nodes)
        return [(primary + t) % count for t in range(self.replication)]

    # -------------------------------------------------------------- #
    # Ingest
    # -------------------------------------------------------------- #
    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Insert one row on the next shard and its replicas."""
        primary = self._next_shard
        for node_index in self._replica_nodes(primary):
            self.nodes[node_index].add(video_id, label, feature)
        self._shard_rows[primary] += 1
        self._labels.append(int(label))
        self._row_count += 1
        self._next_shard = (primary + 1) % len(self.nodes)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Insert many rows, spread across shards (and their replicas).

        Rows land on exactly the shards sequential :meth:`add` calls
        would pick (round-robin from the current cursor), but each shard
        ingests its slice in one :meth:`FeatureIndex.add_batch` call.
        """
        count = min(len(ids), len(labels), len(features))
        if count == 0:
            return
        features = np.asarray(features[:count], dtype=np.float64)
        num_nodes = len(self.nodes)
        start = self._next_shard
        for replica in range(self.replication):
            shifted = (start + replica) % num_nodes
            for node_offset in range(min(num_nodes, count)):
                node = self.nodes[(shifted + node_offset) % num_nodes]
                rows = range(node_offset, count, num_nodes)
                node.index.add_batch(
                    [ids[row] for row in rows],
                    [labels[row] for row in rows],
                    features[node_offset::num_nodes],
                )
        for row in range(count):
            self._shard_rows[(start + row) % num_nodes] += 1
        self._labels.extend(int(label) for label in labels[:count])
        self._row_count += count
        self._next_shard = (start + count) % num_nodes

    # -------------------------------------------------------------- #
    # Scatter/gather search
    # -------------------------------------------------------------- #
    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Scatter/gather top-k across live nodes, best first."""
        if self.fault_plan is not None:
            self.fault_plan.advance(1)
        with span("gallery.search", k=int(k)):
            scatter = self._scatter_plain if self.resilience is None \
                else self._scatter_resilient
            partials = scatter(lambda node: [node.search(query, k)])
            merged = self._merge([lists[0] for lists in partials], k)
            counter("gallery.searches").inc()
            return merged

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Scatter/gather top-k for a ``(B, d)`` query matrix.

        Each live node scores the whole batch in one vectorized pass; the
        coordinator then merges partial lists per query.  Results are
        identical to B sequential :meth:`search` calls.
        """
        queries = np.asarray(queries, dtype=np.float64)
        batch = queries.shape[0]
        if self.fault_plan is not None:
            self.fault_plan.advance(batch)
        with span("gallery.search_batch", k=int(k), batch=batch):
            scatter = self._scatter_plain if self.resilience is None \
                else self._scatter_resilient
            node_results = scatter(
                lambda node: node.search_batch(queries, k), weight=batch)
            merged_lists = [
                self._merge([results[query_idx] for results in node_results],
                            k)
                for query_idx in range(batch)
            ]
            counter("gallery.searches").inc(batch)
            return merged_lists

    # -------------------------------------------------------------- #
    # Scatter strategies
    # -------------------------------------------------------------- #
    def _scatter_plain(self, call, weight: int = 1) -> list:
        """Pre-resilience behaviour: skip failing nodes, serve the rest."""
        partials = []
        for node in self.nodes:
            if not node.alive:
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            start = time.perf_counter()
            try:
                results = call(node)
            except NodeDownError:
                # A fault injector flaked the node mid-scatter; without a
                # resilience config this degrades exactly like a downed
                # node instead of failing the whole query.
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            partials.append(results)
            histogram("gallery.node_latency_s",
                      buckets=NODE_LATENCY_BUCKETS,
                      node=node.node_id).observe(
                          time.perf_counter() - start)
        if not partials and self._row_count:
            # Zero live nodes is not a degraded answer — it is no answer.
            # Mirror the resilient scatter's coverage-loss behaviour
            # instead of silently returning an empty retrieval list (an
            # attacker would read that as "the gallery is empty").
            counter("resilience.uncovered_queries").inc(weight)
            raise RetrievalUnavailable(
                "no live node answered the scatter "
                f"({self._row_count} rows unreachable)")
        if len(partials) < len(self.nodes):
            counter("gallery.degraded_searches").inc(weight)
        return partials

    def _scatter_resilient(self, call, weight: int = 1) -> list:
        """Retry + breaker + deadline + hedged scatter over all nodes."""
        config = self.resilience
        results: dict[int, list] = {}
        latencies: dict[int, float] = {}
        for index, (node, breaker, retry) in enumerate(self._node_plan):
            if breaker is not None and not breaker.allow():
                counter("resilience.breaker_short_circuits",
                        node=node.node_id).inc()
                continue
            try:
                value, latency = self._attempt_node(node, call, retry)
            except (NodeDownError, DeadlineExceeded):
                if breaker is not None:
                    breaker.record_failure()
                counter("gallery.node_skipped", node=node.node_id).inc()
                continue
            if breaker is not None:
                breaker.record_success()
            results[index] = value
            latencies[index] = latency
            histogram("gallery.node_latency_s",
                      buckets=NODE_LATENCY_BUCKETS,
                      node=node.node_id).observe(latency)

        # Hedged reads: drop slow nodes whose shards faster replicas
        # already cover (the replica responses are the hedge).
        if config.hedge_after_s is not None:
            for index in sorted(results):
                if latencies[index] <= config.hedge_after_s:
                    continue
                node_id = self.nodes[index].node_id
                if self._covers_all_shards(set(results) - {index}):
                    del results[index]
                    counter("resilience.hedge_wins", node=node_id).inc()
                else:
                    counter("resilience.hedge_losses", node=node_id).inc()

        if not self._covers_all_shards(set(results)):
            counter("resilience.uncovered_queries").inc(weight)
            if config.on_data_loss == "raise":
                missing = [
                    primary for primary in range(len(self.nodes))
                    if self._shard_rows[primary]
                    and not any(replica in results
                                for replica in self._replica_nodes(primary))
                ]
                raise RetrievalUnavailable(
                    f"no live replica for shard(s) {missing}")
            counter("gallery.degraded_searches").inc(weight)
        elif len(results) < len(self.nodes):
            counter("resilience.degraded_covered_queries").inc(weight)
        return [results[index] for index in sorted(results)]

    def _attempt_node(self, node: DataNode, call, retry: RetryExecutor | None):
        """One node's scatter leg under retry and the per-query deadline."""
        config = self.resilience

        def attempt():
            start = time.perf_counter()
            value = call(node)
            latency = (time.perf_counter() - start
                       + node.last_injected_latency_s)
            if config.deadline_s is not None and latency > config.deadline_s:
                counter("resilience.deadline_exceeded",
                        node=node.node_id).inc()
                raise DeadlineExceeded(
                    f"node {node.node_id} answered in {latency:.4f}s "
                    f"(> deadline {config.deadline_s}s)")
            return value, latency

        if retry is None:
            return attempt()
        return retry.run(attempt)

    def _covers_all_shards(self, available: set[int]) -> bool:
        """Whether every non-empty shard has a replica in ``available``."""
        if len(available) == len(self.nodes):
            return True  # every node answered — trivially covered
        return all(
            rows == 0
            or any(replica in available
                   for replica in self._replica_nodes(primary))
            for primary, rows in enumerate(self._shard_rows)
        )

    # -------------------------------------------------------------- #
    # Merge
    # -------------------------------------------------------------- #
    def _merge(self, partials: list[list[RetrievalEntry]],
               k: int) -> list[RetrievalEntry]:
        """Merge per-node top-k lists into the global top-k, best first.

        Without replication this is a plain ordered merge.  With
        replication, the same row may arrive from several replicas; the
        merge deduplicates by video id and resolves score disagreements
        (a corrupt replica) by majority vote — the first-seen score wins
        ties, and a disagreement increments
        ``resilience.quorum_mismatches``.
        """
        merged = heapq.merge(*partials, key=lambda entry: -entry.score)
        if self.replication == 1:
            return list(merged)[: int(k)]
        votes: dict[str, dict[float, int]] = {}
        first: dict[str, tuple[int, RetrievalEntry]] = {}
        for position, entry in enumerate(merged):
            votes.setdefault(entry.video_id, {})
            scores = votes[entry.video_id]
            scores[entry.score] = scores.get(entry.score, 0) + 1
            if entry.video_id not in first:
                first[entry.video_id] = (position, entry)
        resolved = []
        for video_id, scores in votes.items():
            if len(scores) > 1:
                counter("resilience.quorum_mismatches").inc()
            score = max(scores.items(), key=lambda item: item[1])[0]
            position, entry = first[video_id]
            resolved.append((-score, position,
                             RetrievalEntry(video_id, entry.label, score)))
        resolved.sort(key=lambda item: (item[0], item[1]))
        return [entry for _, _, entry in resolved[: int(k)]]

    def labels_of(self) -> list[int]:
        """All logical labels, in insertion order (replicas deduped)."""
        return list(self._labels)
