"""Simulated distributed data nodes and the sharded gallery coordinator.

Paper Figure 1 shows the retrieval system locating "videos in various
distributed data nodes that are close to [the query] in the feature
space".  :class:`ShardedGallery` reproduces that topology in-process: the
gallery is sharded across ``num_nodes`` :class:`DataNode`s and a
coordinator performs scatter/gather top-k merging.  Nodes can be taken
down to test degraded retrieval (failure injection), and the coordinator
keeps a ``networkx`` star topology for introspection.
"""

from __future__ import annotations

import heapq
import time

import networkx as nx
import numpy as np

from repro.obs import counter, histogram, span
from repro.retrieval.index import FeatureIndex
from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, negative_l2

#: Per-node search latencies are sub-millisecond at test scale.
NODE_LATENCY_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0)


class NodeDownError(RuntimeError):
    """Raised when a downed node is queried directly."""


class DataNode:
    """One storage shard holding a :class:`FeatureIndex`."""

    def __init__(self, node_id: str, similarity: SimilarityFn = negative_l2) -> None:
        self.node_id = str(node_id)
        self.index = FeatureIndex(similarity)
        self.alive = True
        self.search_count = 0

    def __len__(self) -> int:
        return len(self.index)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Store one gallery row on this node."""
        self.index.add(video_id, label, feature)

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Local top-k search; raises :class:`NodeDownError` when down."""
        if not self.alive:
            counter("gallery.node_down_errors", node=self.node_id).inc()
            raise NodeDownError(f"node {self.node_id} is down")
        self.search_count += 1
        return self.index.search(query, k)

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Local top-k for ``(B, d)`` queries in one vectorized pass."""
        if not self.alive:
            counter("gallery.node_down_errors", node=self.node_id).inc()
            raise NodeDownError(f"node {self.node_id} is down")
        self.search_count += len(queries)
        return self.index.search_batch(queries, k)

    def take_down(self) -> None:
        """Simulate a node failure."""
        self.alive = False

    def bring_up(self) -> None:
        """Recover a failed node."""
        self.alive = True


class ShardedGallery:
    """Coordinator over ``num_nodes`` data nodes with scatter/gather merge.

    Rows are assigned to shards round-robin at insertion time.  A search
    fans out to all live nodes, takes each node's local top-k, and merges
    the partial lists into a global top-k.  Downed nodes are skipped, so
    results degrade gracefully rather than failing — matching how a
    replicated production system keeps serving under partial failure.
    """

    def __init__(self, num_nodes: int = 4,
                 similarity: SimilarityFn = negative_l2) -> None:
        if num_nodes < 1:
            raise ValueError("gallery needs at least one node")
        self.nodes = [DataNode(f"node-{i}", similarity) for i in range(num_nodes)]
        self._next_shard = 0
        self.topology = nx.star_graph(num_nodes)
        relabel = {0: "coordinator"}
        relabel.update({i + 1: node.node_id for i, node in enumerate(self.nodes)})
        self.topology = nx.relabel_nodes(self.topology, relabel)

    def __len__(self) -> int:
        return sum(len(node) for node in self.nodes)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def live_nodes(self) -> list[DataNode]:
        return [node for node in self.nodes if node.alive]

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Insert one row on the next shard (round-robin placement)."""
        self.nodes[self._next_shard].add(video_id, label, feature)
        self._next_shard = (self._next_shard + 1) % len(self.nodes)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Insert many rows, spread across shards.

        Rows land on exactly the shards sequential :meth:`add` calls would
        pick (round-robin from the current cursor), but each shard ingests
        its slice in one :meth:`FeatureIndex.add_batch` call.
        """
        count = min(len(ids), len(labels), len(features))
        if count == 0:
            return
        features = np.asarray(features[:count], dtype=np.float64)
        num_nodes = len(self.nodes)
        start = self._next_shard
        for node_offset in range(min(num_nodes, count)):
            node = self.nodes[(start + node_offset) % num_nodes]
            rows = range(node_offset, count, num_nodes)
            node.index.add_batch(
                [ids[row] for row in rows],
                [labels[row] for row in rows],
                features[node_offset::num_nodes],
            )
        self._next_shard = (start + count) % num_nodes

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Scatter/gather top-k across live nodes, best first."""
        with span("gallery.search", k=int(k)):
            partials: list[list[RetrievalEntry]] = []
            for node in self.nodes:
                if not node.alive:
                    counter("gallery.node_skipped", node=node.node_id).inc()
                    continue
                start = time.perf_counter()
                partials.append(node.search(query, k))
                histogram("gallery.node_latency_s",
                          buckets=NODE_LATENCY_BUCKETS,
                          node=node.node_id).observe(
                              time.perf_counter() - start)
            merged = heapq.merge(*partials, key=lambda entry: -entry.score)
            top = list(merged)[: int(k)]
            counter("gallery.searches").inc()
            if len(partials) < len(self.nodes):
                counter("gallery.degraded_searches").inc()
            return top

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Scatter/gather top-k for a ``(B, d)`` query matrix.

        Each live node scores the whole batch in one vectorized pass; the
        coordinator then merges partial lists per query.  Results are
        identical to B sequential :meth:`search` calls.
        """
        queries = np.asarray(queries, dtype=np.float64)
        batch = queries.shape[0]
        with span("gallery.search_batch", k=int(k), batch=batch):
            node_results: list[list[list[RetrievalEntry]]] = []
            for node in self.nodes:
                if not node.alive:
                    counter("gallery.node_skipped", node=node.node_id).inc()
                    continue
                start = time.perf_counter()
                node_results.append(node.search_batch(queries, k))
                histogram("gallery.node_latency_s",
                          buckets=NODE_LATENCY_BUCKETS,
                          node=node.node_id).observe(
                              time.perf_counter() - start)
            merged_lists = []
            for query_idx in range(batch):
                partials = [results[query_idx] for results in node_results]
                merged = heapq.merge(*partials, key=lambda entry: -entry.score)
                merged_lists.append(list(merged)[: int(k)])
            counter("gallery.searches").inc(batch)
            if len(node_results) < len(self.nodes):
                counter("gallery.degraded_searches").inc(batch)
            return merged_lists

    def labels_of(self) -> list[int]:
        """All labels across every shard (including downed ones)."""
        labels: list[int] = []
        for node in self.nodes:
            labels.extend(node.index.labels_of())
        return labels
