"""Approximate nearest-neighbour index (IVF-flat) for large galleries.

Production retrieval over millions of videos does not brute-force the
gallery; it partitions features into coarse cells (k-means) and probes
only the closest cells at query time.  :class:`IVFIndex` implements that
inverted-file design with the same ``search`` interface as
:class:`~repro.retrieval.index.FeatureIndex`, so it can be dropped into
a :class:`~repro.retrieval.nodes.DataNode` or used standalone.

Recall is tunable via ``nprobe`` — the classic ANN speed/recall knob —
and the tests verify the recall@k monotonicity in it.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, negative_l2
from repro.utils.seeding import seeded_rng


def _kmeans(points: np.ndarray, num_clusters: int, iterations: int = 15,
            rng=None) -> np.ndarray:
    """Plain Lloyd's k-means; returns the ``(num_clusters, d)`` centroids."""
    rng = seeded_rng(rng)
    count = points.shape[0]
    chosen = rng.choice(count, size=min(num_clusters, count), replace=False)
    centroids = points[chosen].copy()
    for _ in range(iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assignment = distances.argmin(axis=1)
        for cluster in range(centroids.shape[0]):
            members = points[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


class IVFIndex:
    """Inverted-file flat index: coarse k-means cells + per-cell scan."""

    def __init__(self, num_cells: int = 8, nprobe: int = 2,
                 similarity: SimilarityFn = negative_l2, rng=None) -> None:
        if num_cells < 1 or nprobe < 1:
            raise ValueError("num_cells and nprobe must be positive")
        self.num_cells = int(num_cells)
        self.nprobe = int(nprobe)
        self.similarity = similarity
        self._rng = seeded_rng(rng)
        self._features: list[np.ndarray] = []
        self._ids: list[str] = []
        self._labels: list[int] = []
        self._centroids: np.ndarray | None = None
        self._cells: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Buffer one row; the index is (re)built lazily on search."""
        self._features.append(np.asarray(feature, dtype=np.float64).reshape(-1))
        self._ids.append(str(video_id))
        self._labels.append(int(label))
        self._centroids = None  # mark dirty

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Buffer many rows (``features`` is ``(n, d)``).

        Mirrors :meth:`FeatureIndex.add_batch`: the row count is the min
        of the three argument lengths (zip semantics).
        """
        for video_id, label, feature in zip(ids, labels, features):
            self.add(video_id, label, feature)

    def build(self) -> None:
        """Cluster buffered rows into cells (idempotent until new adds)."""
        if not self._features:
            return
        matrix = np.stack(self._features)
        cells = min(self.num_cells, len(matrix))
        self._centroids = _kmeans(matrix, cells, rng=self._rng)
        distances = ((matrix[:, None, :] - self._centroids[None, :, :]) ** 2
                     ).sum(axis=2)
        assignment = distances.argmin(axis=1)
        self._cells = [np.flatnonzero(assignment == c)
                       for c in range(self._centroids.shape[0])]

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Probe the ``nprobe`` nearest cells and scan only their members."""
        if not self._ids:
            return []
        if self._centroids is None:
            self.build()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        matrix = np.stack(self._features)
        cell_distances = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe_order = np.argsort(cell_distances)[: self.nprobe]
        candidates = np.concatenate(
            [self._cells[c] for c in probe_order]
        ) if len(probe_order) else np.arange(len(matrix))
        if candidates.size == 0:
            return []
        scores = self.similarity(query, matrix[candidates])
        k = min(int(k), candidates.size)
        head = np.argpartition(-scores, k - 1)[:k]
        order = head[np.argsort(-scores[head], kind="stable")]
        return [
            RetrievalEntry(self._ids[candidates[i]],
                           self._labels[candidates[i]], float(scores[i]))
            for i in order
        ]

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Top-k for each row of a ``(B, d)`` query matrix.

        Cell probing is inherently per-query (each query probes its own
        ``nprobe`` cells), so this is a loop over :meth:`search` — the
        point is :class:`~repro.retrieval.protocol.Index` conformance,
        not a vectorized fast path.
        """
        queries = np.asarray(queries, dtype=np.float64)
        queries = queries.reshape(queries.shape[0], -1) if queries.ndim > 1 \
            else queries.reshape(1, -1)
        return [self.search(query, k) for query in queries]

    def labels_of(self) -> list[int]:
        """All stored labels."""
        return list(self._labels)

    def recall_at_k(self, exact_index, queries: np.ndarray, k: int) -> float:
        """Mean fraction of the exact top-k this index also returns."""
        if not len(queries):
            return 0.0
        total = 0.0
        for query in queries:
            exact = {entry.video_id for entry in exact_index.search(query, k)}
            approx = {entry.video_id for entry in self.search(query, k)}
            total += len(exact & approx) / max(len(exact), 1)
        return total / len(queries)
