"""Approximate nearest-neighbour index (IVF-flat) for large galleries.

Production retrieval over millions of videos does not brute-force the
gallery; it partitions features into coarse cells (k-means) and probes
only the closest cells at query time.  :class:`IVFIndex` implements that
inverted-file design with the same ``search`` interface as
:class:`~repro.retrieval.index.FeatureIndex`, so it can be dropped into
a :class:`~repro.retrieval.nodes.DataNode` or used standalone.

Recall is tunable via ``nprobe`` — the classic ANN speed/recall knob —
and the tests verify the recall@k monotonicity in it.

The clustering helpers here are shared with the compressed tier
(:mod:`repro.hashindex`): :func:`assign_clusters` computes nearest
centroids through the chunked ``‖a‖² − 2a·b + ‖b‖²`` expansion, so
building coarse cells over 10^6 rows never materializes an
``(n, k, d)`` broadcast intermediate.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, batched_similarity, negative_l2
from repro.utils.seeding import seeded_rng

#: Element budget for one ``(chunk, k)`` distance block (float64); the
#: GEMM in the expansion never allocates more than this per chunk.
_ASSIGN_CHUNK_ELEMS = 1 << 18


def squared_distances(points: np.ndarray, centroids: np.ndarray
                      ) -> np.ndarray:
    """``(n, k)`` squared ℓ2 distances via ``‖a‖² − 2a·b + ‖b‖²``.

    One GEMM plus two norm vectors — O(n·k·d) flops but only O(n·k)
    memory, unlike the ``(n, k, d)`` broadcast cube the naive form
    allocates.  Clamped at zero: the expansion can dip slightly negative
    for near-identical pairs.
    """
    points = np.asarray(points, dtype=np.float64)
    centroids = np.asarray(centroids, dtype=np.float64)
    point_norms = (points * points).sum(axis=1)[:, None]
    centroid_norms = (centroids * centroids).sum(axis=1)[None, :]
    distances = point_norms - 2.0 * (points @ centroids.T) + centroid_norms
    np.maximum(distances, 0.0, out=distances)
    return distances


def assign_clusters(points: np.ndarray, centroids: np.ndarray,
                    chunk_elems: int = _ASSIGN_CHUNK_ELEMS) -> np.ndarray:
    """Nearest-centroid index per point, chunked over rows.

    Processes ``points`` in blocks so the live ``(chunk, k)`` distance
    matrix stays under ``chunk_elems`` float64 elements no matter how
    large the gallery is.
    """
    points = np.asarray(points, dtype=np.float64)
    count = points.shape[0]
    num_centroids = centroids.shape[0]
    assignment = np.empty(count, dtype=np.int64)
    chunk = max(1, int(chunk_elems) // max(1, num_centroids))
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        block = squared_distances(points[start:stop], centroids)
        assignment[start:stop] = block.argmin(axis=1)
    return assignment


def _kmeans(points: np.ndarray, num_clusters: int, iterations: int = 15,
            rng=None) -> np.ndarray:
    """Plain Lloyd's k-means; returns the ``(num_clusters, d)`` centroids.

    The assignment step runs through :func:`assign_clusters` (chunked
    expansion) instead of the ``(n, k, d)`` broadcast the seed used, so
    clustering a million rows stays memory-bounded; centroid updates are
    the same per-cluster means, so results match the seeded galleries.
    """
    rng = seeded_rng(rng)
    count = points.shape[0]
    chosen = rng.choice(count, size=min(num_clusters, count), replace=False)
    centroids = points[chosen].copy()
    for _ in range(iterations):
        assignment = assign_clusters(points, centroids)
        for cluster in range(centroids.shape[0]):
            members = points[assignment == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return centroids


class IVFIndex:
    """Inverted-file flat index: coarse k-means cells + per-cell scan."""

    def __init__(self, num_cells: int = 8, nprobe: int = 2,
                 similarity: SimilarityFn = negative_l2, rng=None) -> None:
        if num_cells < 1 or nprobe < 1:
            raise ValueError("num_cells and nprobe must be positive")
        self.num_cells = int(num_cells)
        self.nprobe = int(nprobe)
        self.similarity = similarity
        self._rng = seeded_rng(rng)
        self._features: list[np.ndarray] = []
        self._ids: list[str] = []
        self._labels: list[int] = []
        self._matrix: np.ndarray | None = None
        self._centroids: np.ndarray | None = None
        self._cells: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Buffer one row; the index is (re)built lazily on search."""
        self._features.append(np.asarray(feature, dtype=np.float64).reshape(-1))
        self._ids.append(str(video_id))
        self._labels.append(int(label))
        self._centroids = None  # mark dirty
        self._matrix = None  # invalidate the stacked-matrix cache

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Buffer many rows (``features`` is ``(n, d)``).

        Mirrors :meth:`FeatureIndex.add_batch`: the row count is the min
        of the three argument lengths (zip semantics).
        """
        for video_id, label, feature in zip(ids, labels, features):
            self.add(video_id, label, feature)

    def _feature_matrix(self) -> np.ndarray:
        """The stacked ``(n, d)`` gallery matrix, cached until the next add.

        The seed implementation re-ran ``np.stack(self._features)`` on
        every :meth:`search` call — an O(n·d) copy per query.  Like
        ``FeatureIndex._feature_matrix``, the stack now happens once per
        build and is invalidated by :meth:`add`.
        """
        if self._matrix is None:
            self._matrix = np.stack(self._features)
        return self._matrix

    def build(self) -> None:
        """Cluster buffered rows into cells (idempotent until new adds)."""
        if not self._features:
            return
        matrix = self._feature_matrix()
        cells = min(self.num_cells, len(matrix))
        self._centroids = _kmeans(matrix, cells, rng=self._rng)
        assignment = assign_clusters(matrix, self._centroids)
        self._cells = [np.flatnonzero(assignment == c)
                       for c in range(self._centroids.shape[0])]

    def _probe_candidates(self, probe_order: np.ndarray) -> np.ndarray:
        """Member rows of the probed cells, in probe order."""
        if not len(probe_order):
            return np.arange(len(self._ids))
        return np.concatenate([self._cells[c] for c in probe_order])

    def _top_k_entries(self, candidates: np.ndarray, scores: np.ndarray,
                       k: int) -> list[RetrievalEntry]:
        """Exact-sorted head of one candidate score row."""
        k = min(int(k), candidates.size)
        head = np.argpartition(-scores, k - 1)[:k]
        order = head[np.argsort(-scores[head], kind="stable")]
        return [
            RetrievalEntry(self._ids[candidates[i]],
                           self._labels[candidates[i]], float(scores[i]))
            for i in order
        ]

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Probe the ``nprobe`` nearest cells and scan only their members."""
        if not self._ids:
            return []
        if self._centroids is None:
            self.build()
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        matrix = self._feature_matrix()
        cell_distances = ((self._centroids - query[None, :]) ** 2).sum(axis=1)
        probe_order = np.argsort(cell_distances)[: self.nprobe]
        candidates = self._probe_candidates(probe_order)
        if candidates.size == 0:
            return []
        scores = self.similarity(query, matrix[candidates])
        return self._top_k_entries(candidates, scores, k)

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Top-k for each row of a ``(B, d)`` query matrix.

        Centroid distances for the whole batch are computed in one
        broadcast (elementwise-identical to the scalar expression), and
        queries probing the *same* cell sequence share one gather and
        one batched similarity call — the common case when a batch of
        attack candidates clusters around the original video.  Per-row
        results are bit-identical to sequential :meth:`search` calls
        (the ``ivf_index.search_vs_batch`` oracle gates this).
        """
        queries = np.asarray(queries, dtype=np.float64)
        queries = queries.reshape(queries.shape[0], -1) if queries.ndim > 1 \
            else queries.reshape(1, -1)
        if not self._ids:
            return [[] for _ in range(queries.shape[0])]
        if self._centroids is None:
            self.build()
        matrix = self._feature_matrix()
        # Same elementwise subtract/square/sum pipeline as the scalar
        # path, broadcast over the batch axis — bit-identical distances.
        cell_distances = ((self._centroids[None, :, :]
                           - queries[:, None, :]) ** 2).sum(axis=2)
        probe_orders = np.argsort(cell_distances, axis=1)[:, : self.nprobe]
        # Group queries sharing a probe sequence: one candidate gather
        # and one batched similarity per group instead of per query.
        groups: dict[tuple[int, ...], list[int]] = {}
        for row, probes in enumerate(probe_orders):
            groups.setdefault(tuple(int(p) for p in probes), []).append(row)
        batch_similarity = batched_similarity(self.similarity)
        results: list[list[RetrievalEntry]] = [[] for _ in range(len(queries))]
        for probes, rows in groups.items():
            candidates = self._probe_candidates(np.asarray(probes, dtype=int))
            if candidates.size == 0:
                continue
            score_matrix = batch_similarity(queries[rows], matrix[candidates])
            for row, scores in zip(rows, score_matrix):
                results[row] = self._top_k_entries(candidates, scores, k)
        return results

    def labels_of(self) -> list[int]:
        """All stored labels."""
        return list(self._labels)

    def recall_at_k(self, exact_index, queries: np.ndarray, k: int) -> float:
        """Mean fraction of the exact top-k this index also returns."""
        if not len(queries):
            return 0.0
        total = 0.0
        for query in queries:
            exact = {entry.video_id for entry in exact_index.search(query, k)}
            approx = {entry.video_id for entry in self.search(query, k)}
            total += len(exact & approx) / max(len(exact), 1)
        return total / len(queries)
