"""Black-box facade over the retrieval engine.

This is the attacker's entire world: ``query(video) → R^m(video)``.  The
facade counts queries (query efficiency is a headline metric for
black-box attacks), optionally enforces a query budget, and can wrap the
engine with a defense that preprocesses inputs and/or flags adversarial
queries.

Batched evaluation
------------------
``query_batch`` embeds many candidates in one model forward while keeping
*sequential* accounting semantics: each video is budget-checked and
counted in order, so a mid-batch budget exhaustion raises at exactly the
query index a sequential loop would have.

``speculate``/``commit_speculated`` support attack loops that evaluate a
candidate pair but may consume only the first result (SimBA's ±flip):
speculation computes results without touching the query counter, and the
caller commits exactly the evaluations a sequential attacker would have
issued.  Speculation requires a stateless service (no preprocessor) —
a stateful defense must never observe phantom queries.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import counter, gauge, span
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.lists import RetrievalList
from repro.video.types import Video

#: A defense preprocessor maps a query video to the video actually embedded.
Preprocessor = Callable[[Video], Video]


class QueryBudgetExceeded(RuntimeError):
    """Raised when the attacker exceeds the configured query budget."""


class RetrievalService:
    """``R^m(·)`` as seen by an end user / attacker.

    ``quantize_queries`` models a real upload API: query pixels are
    rounded to 8-bit before embedding, so adversarial perturbations must
    survive quantization (the paper's τ is specified in 8-bit units for
    exactly this reason).
    """

    def __init__(self, engine: RetrievalEngine, m: int = 10,
                 query_budget: int | None = None,
                 preprocessor: Preprocessor | None = None,
                 quantize_queries: bool = False) -> None:
        if m < 1:
            raise ValueError("m (returned list length) must be positive")
        self.engine = engine
        self.m = int(m)
        self.query_budget = query_budget
        self.preprocessor = preprocessor
        self.quantize_queries = bool(quantize_queries)
        self.query_count = 0

    def reset_query_count(self) -> None:
        """Zero the query counter (e.g. between attack runs)."""
        self.query_count = 0

    # -------------------------------------------------------------- #
    # Accounting (shared by sequential, batched, and committed paths)
    # -------------------------------------------------------------- #
    def _check_budget(self) -> None:
        if self.query_budget is not None and self.query_count >= self.query_budget:
            counter("retrieval.budget_exceeded").inc()
            raise QueryBudgetExceeded(
                f"query budget of {self.query_budget} exhausted"
            )

    def _account_one(self) -> None:
        self.query_count += 1
        counter("retrieval.queries").inc()
        if self.query_budget is not None:
            gauge("retrieval.budget_remaining").set(
                self.query_budget - self.query_count)

    def _prepare(self, video: Video, record: bool = True) -> Video:
        """Quantize + run the defense preprocessor on one query video."""
        if self.quantize_queries:
            from repro.video.transforms import dequantize_uint8, quantize_uint8

            video = dequantize_uint8(quantize_uint8(video), video.label,
                                     video.video_id)
            if record:
                counter("retrieval.quantized_queries").inc()
        if self.preprocessor is not None:
            with span("retrieval.defense.preprocess"):
                video = self.preprocessor(video)
            counter("retrieval.defense.preprocessed").inc()
        return video

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def query(self, video: Video, m: int | None = None) -> RetrievalList:
        """Return the retrieval list for ``video``.

        Raises :class:`QueryBudgetExceeded` once the budget is exhausted;
        this models server-side throttling of suspicious accounts.
        """
        self._check_budget()
        self._account_one()
        with span("retrieval.query"):
            video = self._prepare(video)
            return self.engine.retrieve(video, self.m if m is None else int(m))

    def query_batch(self, videos: list[Video],
                    m: int | None = None) -> list[RetrievalList]:
        """Retrieval lists for many videos in one model forward.

        Accounting is per-video and in order: if the budget runs out at
        the ``i``-th video the counter stops exactly where a sequential
        loop would have, and the exception propagates before any result
        is returned.
        """
        if "query" in self.__dict__:
            # The instance's query entry point was overridden (wrapped by a
            # detector, a test spy, ...) — batching must not route around
            # the instrumentation, so fall back to per-video queries.
            return [self.query(video, m) for video in videos]
        prepared = []
        for video in videos:
            self._check_budget()
            self._account_one()
            prepared.append(self._prepare(video))
        with span("retrieval.query_batch", batch=len(videos)):
            return self.engine.retrieve_batch(
                prepared, self.m if m is None else int(m))

    # -------------------------------------------------------------- #
    # Speculative evaluation
    # -------------------------------------------------------------- #
    @property
    def speculation_safe(self) -> bool:
        """Whether results may be precomputed without observable effects.

        A defense preprocessor may be stateful or randomized; evaluating
        a candidate the attacker would never have sent could perturb it.
        Quantization is pure, so it does not block speculation.  An
        instance-level override of :meth:`query` (a stateful detector or
        test spy wrapping the entry point) also disables speculation —
        phantom evaluations must never bypass instrumentation.
        """
        return self.preprocessor is None and "query" not in self.__dict__

    def speculate(self, videos: list[Video],
                  m: int | None = None) -> list[RetrievalList]:
        """Compute retrieval lists without counting any query.

        Callers must pair this with :meth:`commit_speculated` for every
        result they actually consume, so the query counter, budget, and
        obs counters end up exactly where sequential :meth:`query` calls
        would have left them.
        """
        if not self.speculation_safe:
            raise RuntimeError(
                "speculative queries require a stateless service "
                "(preprocessor is set)")
        prepared = [self._prepare(video, record=False) for video in videos]
        with span("retrieval.speculate", batch=len(videos)):
            return self.engine.retrieve_batch(
                prepared, self.m if m is None else int(m))

    def commit_speculated(self, count: int = 1) -> None:
        """Account for ``count`` speculated results that were consumed.

        Replays :meth:`query`'s accounting per result: budget check (may
        raise :class:`QueryBudgetExceeded` mid-commit, leaving the counter
        exactly as the sequential attack would have), query counter, and
        obs counters.
        """
        for _ in range(int(count)):
            self._check_budget()
            self._account_one()
            if self.quantize_queries:
                counter("retrieval.quantized_queries").inc()
