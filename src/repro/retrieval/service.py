"""Black-box facade over the retrieval engine.

This is the attacker's entire world: ``query(video) → R^m(video)``.  The
facade counts queries (query efficiency is a headline metric for
black-box attacks), optionally enforces a query budget, and can wrap the
engine with a defense that preprocesses inputs and/or flags adversarial
queries.

Construction
------------
The preferred constructor is :meth:`RetrievalService.build`, which takes
a :class:`~repro.retrieval.config.ServiceConfig` (plus an optional
:class:`~repro.resilience.ResilienceConfig` applied to the engine's
gallery).  The legacy kwargs (``m``, ``query_budget``, ``preprocessor``,
``quantize_queries``) still work on ``__init__`` but emit a
:class:`DeprecationWarning`.

Batched evaluation
------------------
``query_batch`` embeds many candidates in one model forward while keeping
*sequential* accounting semantics: each video is budget-checked and
counted in order, so a mid-batch budget exhaustion raises at exactly the
query index a sequential loop would have.

``speculate``/``commit_speculated`` support attack loops that evaluate a
candidate pair but may consume only the first result (SimBA's ±flip):
speculation computes results without touching the query counter, and the
caller commits exactly the evaluations a sequential attacker would have
issued.  Speculation requires a stateless service (no preprocessor) —
a stateful defense must never observe phantom queries.

Unavailability
--------------
When the resilient gallery cannot serve a query exactly it raises
:class:`~repro.errors.RetrievalUnavailable`.  The service *refunds* that
query's accounting before propagating, so an attack that checkpoints,
waits out the outage, and resumes sees exactly the query count an
uninterrupted run would have.
"""

from __future__ import annotations

import warnings
from dataclasses import fields

from repro.errors import QueryBudgetExceeded, RetrievalUnavailable
from repro.obs import counter, gauge, span
from repro.resilience.config import ResilienceConfig
from repro.retrieval.config import Preprocessor, ServiceConfig
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.lists import RetrievalList
from repro.video.types import Video

__all__ = [
    "RetrievalService",
    "ServiceConfig",
    "QueryBudgetExceeded",
    "Preprocessor",
]

#: Sentinel distinguishing "kwarg not passed" from an explicit default.
_UNSET = object()


class RetrievalService:
    """``R^m(·)`` as seen by an end user / attacker.

    ``quantize_queries`` models a real upload API: query pixels are
    rounded to 8-bit before embedding, so adversarial perturbations must
    survive quantization (the paper's τ is specified in 8-bit units for
    exactly this reason).
    """

    def __init__(self, engine: RetrievalEngine, m=_UNSET, query_budget=_UNSET,
                 preprocessor=_UNSET, quantize_queries=_UNSET, *,
                 config: ServiceConfig | None = None) -> None:
        legacy = {
            name: value
            for name, value in (("m", m), ("query_budget", query_budget),
                                ("preprocessor", preprocessor),
                                ("quantize_queries", quantize_queries))
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either a ServiceConfig or legacy kwargs, not both")
            warnings.warn(
                "RetrievalService(engine, m=..., query_budget=..., ...) is "
                "deprecated; use RetrievalService.build(engine, "
                "ServiceConfig(...)) instead",
                DeprecationWarning, stacklevel=2)
            config = ServiceConfig(**legacy)
        self.config = config if config is not None else ServiceConfig()
        self.engine = engine
        self.query_count = 0
        # Conservation ledger (see repro.qa.invariants): every accounted
        # query is *issued*; refunds move it from charged to refunded, so
        # queries_issued == query_count + queries_refunded at all times.
        self.queries_issued = 0
        self.queries_refunded = 0

    @classmethod
    def build(cls, engine: RetrievalEngine,
              config: ServiceConfig | None = None, *,
              resilience: ResilienceConfig | None = None,
              **overrides) -> "RetrievalService":
        """The redesigned constructor path.

        ``overrides`` are :class:`ServiceConfig` field names applied on
        top of ``config`` (``build(engine, m=8)`` is the idiomatic short
        form).  A ``resilience`` config is installed on the engine's
        gallery — replication must be set before indexing.  An
        ``index_tier`` switches the gallery to a compressed index
        (rows already stored are re-ingested, so the knob works before
        or after indexing).
        """
        config = config if config is not None else ServiceConfig()
        if overrides:
            valid = {field.name for field in fields(ServiceConfig)}
            unknown = set(overrides) - valid
            if unknown:
                raise TypeError(
                    f"unknown ServiceConfig field(s): {sorted(unknown)}")
            config = config.with_(**overrides)
        if resilience is not None:
            engine.configure_resilience(resilience)
        if config.index_tier is not None:
            engine.configure_index_tier(config.index_tier)
        if config.fuse is not None:
            engine.configure_fuse(config.fuse)
        if config.router is not None:
            engine.configure_router(config.router)
        return cls(engine, config=config)

    # Legacy attribute surface (kept so existing call sites and tests
    # reading service.m / service.preprocessor keep working).
    @property
    def m(self) -> int:
        return self.config.m

    @property
    def query_budget(self) -> int | None:
        return self.config.query_budget

    @property
    def preprocessor(self) -> Preprocessor | None:
        return self.config.preprocessor

    @property
    def quantize_queries(self) -> bool:
        return self.config.quantize_queries

    def reset_query_count(self) -> None:
        """Zero the query counters (e.g. between attack runs)."""
        self.query_count = 0
        self.queries_issued = 0
        self.queries_refunded = 0

    # -------------------------------------------------------------- #
    # Accounting (shared by sequential, batched, and committed paths)
    # -------------------------------------------------------------- #
    def _check_budget(self) -> None:
        budget = self.config.query_budget
        if budget is not None and self.query_count >= budget:
            counter("retrieval.budget_exceeded").inc()
            raise QueryBudgetExceeded(
                f"query budget of {budget} exhausted"
            )

    def _account_one(self) -> None:
        self.query_count += 1
        self.queries_issued += 1
        counter("retrieval.queries").inc()
        if self.config.query_budget is not None:
            gauge("retrieval.budget_remaining").set(
                self.config.query_budget - self.query_count)

    def _refund(self, count: int) -> None:
        """Roll back accounting for queries the engine failed to serve.

        Called when :class:`~repro.errors.RetrievalUnavailable`
        propagates: the attacker never received a list, so the query
        must not count — this is what makes checkpoint/resume
        accounting bit-identical to an uninterrupted run.
        """
        self.query_count -= int(count)
        self.queries_refunded += int(count)
        counter("retrieval.unavailable").inc(count)
        if self.config.query_budget is not None:
            gauge("retrieval.budget_remaining").set(
                self.config.query_budget - self.query_count)

    def _unissue(self, count: int) -> None:
        """Roll back queries a sequential caller would never have sent.

        ``query_batch`` pre-accounts the whole batch before dispatch; on
        a mid-batch failure the suffix behind the failing video was never
        issued in sequential semantics, so — unlike :meth:`_refund`,
        which keeps the query on the issued side of the ledger — it is
        removed from both ``query_count`` and ``queries_issued``.
        """
        self.query_count -= int(count)
        self.queries_issued -= int(count)
        if self.config.query_budget is not None:
            gauge("retrieval.budget_remaining").set(
                self.config.query_budget - self.query_count)

    def _prepare(self, video: Video, record: bool = True) -> Video:
        """Quantize + run the defense preprocessor on one query video."""
        if self.config.quantize_queries:
            from repro.video.transforms import dequantize_uint8, quantize_uint8

            video = dequantize_uint8(quantize_uint8(video), video.label,
                                     video.video_id, video.metadata)
            if record:
                counter("retrieval.quantized_queries").inc()
        if self.config.preprocessor is not None:
            with span("retrieval.defense.preprocess"):
                video = self.config.preprocessor(video)
            counter("retrieval.defense.preprocessed").inc()
        return video

    # -------------------------------------------------------------- #
    # Queries
    # -------------------------------------------------------------- #
    def query(self, video: Video, m: int | None = None) -> RetrievalList:
        """Return the retrieval list for ``video``.

        Raises :class:`QueryBudgetExceeded` once the budget is exhausted
        (this models server-side throttling of suspicious accounts), and
        :class:`~repro.errors.RetrievalUnavailable` — with the query
        refunded — when the gallery cannot answer exactly.
        """
        self._check_budget()
        self._account_one()
        with span("retrieval.query"):
            video = self._prepare(video)
            try:
                return self.engine.retrieve(
                    video, self.config.m if m is None else int(m))
            except RetrievalUnavailable:
                self._refund(1)
                raise

    def query_batch(self, videos: list[Video],
                    m: int | None = None) -> list[RetrievalList]:
        """Retrieval lists for many videos in one model forward.

        Accounting is per-video and in order: if the budget runs out at
        the ``i``-th video the counter stops exactly where a sequential
        loop would have, and the exception propagates before any result
        is returned.

        A mid-batch :class:`~repro.errors.RetrievalUnavailable` is also
        settled with sequential semantics (serve-or-refund per video):
        the served prefix stays charged, exactly the failing query is
        refunded, and the un-dispatched suffix is rolled off the ledger
        entirely — so checkpoint/resume query counts are bit-identical
        to a sequential loop hitting the same outage.  The propagated
        exception carries the prefix (``served``/``served_count``) for
        callers that deliver partial results, e.g. the serving front end.
        """
        if "query" in self.__dict__:
            # The instance's query entry point was overridden (wrapped by a
            # detector, a test spy, ...) — batching must not route around
            # the instrumentation, so fall back to per-video queries.
            return [self.query(video, m) for video in videos]
        prepared = self.begin_batch(videos)
        with span("retrieval.query_batch", batch=len(videos)):
            try:
                return self.engine.retrieve_batch(
                    prepared, self.config.m if m is None else int(m))
            except RetrievalUnavailable as exc:
                self.settle_interrupted(
                    len(prepared), int(getattr(exc, "served_count", 0)))
                raise

    # -------------------------------------------------------------- #
    # Split accounting/compute (pooled serving executor)
    # -------------------------------------------------------------- #
    def begin_batch(self, videos: list[Video]) -> list[Video]:
        """Account and prepare a batch whose compute happens elsewhere.

        The serving event loop calls this at dispatch time — budget
        checks, per-video accounting, and (possibly stateful) defense
        preprocessing all run on the loop thread in arrival order, so
        worker count never changes the ledger.  The returned prepared
        videos go to :meth:`compute_batch` on a worker.
        """
        prepared = []
        for video in videos:
            self._check_budget()
            self._account_one()
            prepared.append(self._prepare(video))
        return prepared

    def compute_batch(self, prepared: list[Video], m: int | None = None,
                      snapshots: list | None = None,
                      fuse_override: bool | None = None
                      ) -> list[RetrievalList]:
        """Pure compute for a batch accounted via :meth:`begin_batch`.

        Safe to run on a worker thread: it touches no service counters.
        A propagating :class:`~repro.errors.RetrievalUnavailable` must be
        settled by the caller with :meth:`settle_interrupted`.
        """
        with span("retrieval.query_batch", batch=len(prepared)):
            return self.engine.retrieve_batch(
                prepared, self.config.m if m is None else int(m),
                snapshots=snapshots, fuse_override=fuse_override)

    def settle_interrupted(self, total: int, served: int) -> None:
        """Sequential serve-or-refund settlement for an interrupted batch.

        Mirrors :meth:`query_batch`'s exception path: the served prefix
        stays charged, the failing query is refunded, and the suffix a
        sequential caller would never have sent is rolled off the
        ledger.
        """
        self._refund(1)
        self._unissue(int(total) - int(served) - 1)

    def query_batch_pinned(self, videos: list[Video], snapshots: list,
                           m: int | None = None) -> list[RetrievalList]:
        """:meth:`query_batch` with one pinned gallery snapshot per video.

        Used by the serving frontend under churn: each query is
        evaluated against the gallery version it was admitted under,
        with the same sequential accounting semantics as
        :meth:`query_batch`.  An instance-level :meth:`query` override
        (stateful detector, test spy) falls back to per-video queries
        against the *current* gallery — instrumented services are not
        snapshot-pinned.
        """
        if "query" in self.__dict__:
            return [self.query(video, m) for video in videos]
        prepared = self.begin_batch(videos)
        try:
            return self.compute_batch(prepared, m, snapshots=snapshots)
        except RetrievalUnavailable as exc:
            self.settle_interrupted(len(prepared),
                                    int(getattr(exc, "served_count", 0)))
            raise

    # -------------------------------------------------------------- #
    # Speculative evaluation
    # -------------------------------------------------------------- #
    @property
    def speculation_safe(self) -> bool:
        """Whether results may be precomputed without observable effects.

        A defense preprocessor may be stateful or randomized; evaluating
        a candidate the attacker would never have sent could perturb it.
        Quantization is pure, so it does not block speculation.  An
        instance-level override of :meth:`query` (a stateful detector or
        test spy wrapping the entry point) also disables speculation —
        phantom evaluations must never bypass instrumentation.
        """
        return self.config.preprocessor is None and \
            "query" not in self.__dict__

    def speculate(self, videos: list[Video],
                  m: int | None = None) -> list[RetrievalList]:
        """Compute retrieval lists without counting any query.

        Callers must pair this with :meth:`commit_speculated` for every
        result they actually consume, so the query counter, budget, and
        obs counters end up exactly where sequential :meth:`query` calls
        would have left them.
        """
        if not self.speculation_safe:
            raise RuntimeError(
                "speculative queries require a stateless service "
                "(preprocessor is set)")
        prepared = [self._prepare(video, record=False) for video in videos]
        with span("retrieval.speculate", batch=len(videos)):
            return self.engine.retrieve_batch(
                prepared, self.config.m if m is None else int(m))

    def commit_speculated(self, count: int = 1) -> None:
        """Account for ``count`` speculated results that were consumed.

        Replays :meth:`query`'s accounting per result: budget check (may
        raise :class:`QueryBudgetExceeded` mid-commit, leaving the counter
        exactly as the sequential attack would have), query counter, and
        obs counters.
        """
        for _ in range(int(count)):
            self._check_budget()
            self._account_one()
            if self.config.quantize_queries:
                counter("retrieval.quantized_queries").inc()
