"""Black-box facade over the retrieval engine.

This is the attacker's entire world: ``query(video) → R^m(video)``.  The
facade counts queries (query efficiency is a headline metric for
black-box attacks), optionally enforces a query budget, and can wrap the
engine with a defense that preprocesses inputs and/or flags adversarial
queries.
"""

from __future__ import annotations

from typing import Callable

from repro.obs import counter, gauge, span
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.lists import RetrievalList
from repro.video.types import Video

#: A defense preprocessor maps a query video to the video actually embedded.
Preprocessor = Callable[[Video], Video]


class QueryBudgetExceeded(RuntimeError):
    """Raised when the attacker exceeds the configured query budget."""


class RetrievalService:
    """``R^m(·)`` as seen by an end user / attacker.

    ``quantize_queries`` models a real upload API: query pixels are
    rounded to 8-bit before embedding, so adversarial perturbations must
    survive quantization (the paper's τ is specified in 8-bit units for
    exactly this reason).
    """

    def __init__(self, engine: RetrievalEngine, m: int = 10,
                 query_budget: int | None = None,
                 preprocessor: Preprocessor | None = None,
                 quantize_queries: bool = False) -> None:
        if m < 1:
            raise ValueError("m (returned list length) must be positive")
        self.engine = engine
        self.m = int(m)
        self.query_budget = query_budget
        self.preprocessor = preprocessor
        self.quantize_queries = bool(quantize_queries)
        self.query_count = 0

    def reset_query_count(self) -> None:
        """Zero the query counter (e.g. between attack runs)."""
        self.query_count = 0

    def query(self, video: Video, m: int | None = None) -> RetrievalList:
        """Return the retrieval list for ``video``.

        Raises :class:`QueryBudgetExceeded` once the budget is exhausted;
        this models server-side throttling of suspicious accounts.
        """
        if self.query_budget is not None and self.query_count >= self.query_budget:
            counter("retrieval.budget_exceeded").inc()
            raise QueryBudgetExceeded(
                f"query budget of {self.query_budget} exhausted"
            )
        self.query_count += 1
        counter("retrieval.queries").inc()
        if self.query_budget is not None:
            gauge("retrieval.budget_remaining").set(
                self.query_budget - self.query_count)
        with span("retrieval.query"):
            if self.quantize_queries:
                from repro.video.transforms import dequantize_uint8, quantize_uint8

                video = dequantize_uint8(quantize_uint8(video), video.label,
                                         video.video_id)
                counter("retrieval.quantized_queries").inc()
            if self.preprocessor is not None:
                with span("retrieval.defense.preprocess"):
                    video = self.preprocessor(video)
                counter("retrieval.defense.preprocessed").inc()
            return self.engine.retrieve(video, self.m if m is None else int(m))
