"""Service-facing configuration for the black-box retrieval facade.

:class:`ServiceConfig` replaces the kwarg sprawl that
``RetrievalService.__init__`` had accumulated (``m``, ``query_budget``,
``preprocessor``, ``quantize_queries``, plus the retry/replication knobs
this PR adds through :class:`~repro.resilience.ResilienceConfig`).  The
old kwargs still work — with a :class:`DeprecationWarning` — but new
code should go through :meth:`RetrievalService.build`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.video.types import Video

#: A defense preprocessor maps a query video to the video actually embedded.
Preprocessor = Callable[[Video], Video]


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the attacker-facing service surface.

    Parameters
    ----------
    m:
        Length of the returned retrieval list ``R^m(v)``.
    query_budget:
        Hard cap on counted queries (``None`` = unlimited); exceeding it
        raises :class:`~repro.errors.QueryBudgetExceeded`.
    preprocessor:
        Optional defense transform applied to every query video.
    quantize_queries:
        Round query pixels to 8-bit before embedding, modelling a real
        upload API (the paper's τ is specified in 8-bit units).
    index_tier:
        Gallery index implementation (``"exact"`` | ``"ivf"`` |
        ``"hamming"`` | ``"ivfpq"``, see :mod:`repro.hashindex.tiers`).
        ``None`` keeps the engine's current tier (which itself defaults
        from ``REPRO_INDEX_TIER``).
    fuse:
        Run query embeddings through the trace-and-fuse replay engine
        (:mod:`repro.nn.jit`).  ``True``/``False`` force it on/off for
        this service; ``None`` (default) follows the global
        ``REPRO_NN_FUSE`` switch.  Replays are bit-identical to eager, so
        this is a pure latency knob.
    router:
        Cost-model adaptive routing (:mod:`repro.router`).  A
        :class:`~repro.router.Router` routes this service's engine with
        that instance; ``True`` enables routing against the default
        calibration profile; ``False`` disables it (overriding
        ``REPRO_ROUTER``); ``None`` (default) follows the global env
        switch.  The router only chooses among oracle-pinned equivalent
        implementations, so results never change.
    """

    m: int = 10
    query_budget: int | None = None
    preprocessor: Preprocessor | None = None
    quantize_queries: bool = False
    index_tier: str | None = None
    fuse: bool | None = None
    router: object | None = None

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m (returned list length) must be positive")
        if self.query_budget is not None and self.query_budget < 0:
            raise ValueError("query_budget must be non-negative")
        if self.index_tier is not None:
            # Lazy import: repro.hashindex depends on retrieval
            # submodules, so a top-level import would cycle.
            from repro.hashindex.tiers import resolve_index_tier

            resolve_index_tier(self.index_tier)  # raises on unknown tier
        if self.router is not None and not isinstance(self.router, bool):
            # Lazy import mirrors index_tier: repro.router is leaf-light
            # but the config module must stay import-cheap.
            from repro.router import Router

            if not isinstance(self.router, Router):
                raise TypeError(
                    f"router must be a Router, bool, or None; "
                    f"got {self.router!r}")

    def with_(self, **changes) -> "ServiceConfig":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        return replace(self, **changes)


__all__ = ["ServiceConfig", "Preprocessor"]
