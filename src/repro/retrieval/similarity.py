"""Similarity functions between a query feature and gallery features.

The paper's deep model uses "a similarity function (e.g., ℓ2-norm based)
for computing a list of similar videos"; cosine similarity is provided as
an alternative since all victim losses operate on normalized embeddings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

SimilarityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def negative_l2(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Similarity = −‖q − g‖₂ for each gallery row (higher is more similar)."""
    diffs = gallery - query[None, :]
    return -np.sqrt((diffs * diffs).sum(axis=1))


def cosine(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Cosine similarity between the query and each gallery row."""
    q = query / (np.linalg.norm(query) + 1e-12)
    g = gallery / (np.linalg.norm(gallery, axis=1, keepdims=True) + 1e-12)
    return g @ q


def hamming(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Negative Hamming distance between sign-binarized codes.

    Inputs may be relaxed (real-valued) codes; both sides are binarized
    by sign before comparison, matching deep-hash retrieval (HashNet
    [42]).  Higher is more similar; identical codes score 0.
    """
    q = np.where(query >= 0.0, 1.0, -1.0)
    g = np.where(gallery >= 0.0, 1.0, -1.0)
    # Hamming distance = (bits − dot) / 2 for ±1 codes.
    return -((q.size - g @ q) / 2.0)


SIMILARITIES: dict[str, SimilarityFn] = {
    "l2": negative_l2,
    "cosine": cosine,
    "hamming": hamming,
}


def create_similarity(name: str) -> SimilarityFn:
    """Look up a similarity function by name (``"l2"`` or ``"cosine"``)."""
    key = name.lower()
    if key not in SIMILARITIES:
        raise KeyError(f"unknown similarity {name!r}; available: {sorted(SIMILARITIES)}")
    return SIMILARITIES[key]
