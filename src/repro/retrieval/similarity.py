"""Similarity functions between a query feature and gallery features.

The paper's deep model uses "a similarity function (e.g., ℓ2-norm based)
for computing a list of similar videos"; cosine similarity is provided as
an alternative since all victim losses operate on normalized embeddings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

SimilarityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def negative_l2(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Similarity = −‖q − g‖₂ for each gallery row (higher is more similar)."""
    diffs = gallery - query[None, :]
    return -np.sqrt((diffs * diffs).sum(axis=1))


def cosine(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Cosine similarity between the query and each gallery row."""
    q = query / (np.linalg.norm(query) + 1e-12)
    g = gallery / (np.linalg.norm(gallery, axis=1, keepdims=True) + 1e-12)
    return g @ q


def hamming(query: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Negative Hamming distance between sign-binarized codes.

    Inputs may be relaxed (real-valued) codes; both sides are binarized
    by sign before comparison, matching deep-hash retrieval (HashNet
    [42]).  Higher is more similar; identical codes score 0.
    """
    q = np.where(query >= 0.0, 1.0, -1.0)
    g = np.where(gallery >= 0.0, 1.0, -1.0)
    # Hamming distance = (bits − dot) / 2 for ±1 codes.
    return -((q.size - g @ q) / 2.0)


SIMILARITIES: dict[str, SimilarityFn] = {
    "l2": negative_l2,
    "cosine": cosine,
    "hamming": hamming,
}


def create_similarity(name: str) -> SimilarityFn:
    """Look up a similarity function by name (``"l2"`` or ``"cosine"``)."""
    key = name.lower()
    if key not in SIMILARITIES:
        raise KeyError(f"unknown similarity {name!r}; available: {sorted(SIMILARITIES)}")
    return SIMILARITIES[key]


# ---------------------------------------------------------------------- #
# Batched variants: ``(B, d)`` queries against ``(n, d)`` gallery → ``(B, n)``
# ---------------------------------------------------------------------- #
#: Batched score matrices, used by ``FeatureIndex.search_batch`` so top-k
#: over B queries runs as one argpartition per shard instead of B.
BatchSimilarityFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


#: Element budget for one ``(chunk, n, d)`` broadcast temporary (~256 KiB
#: of float64).  Larger blocks spill the difference cube out of cache and
#: run slower than the scalar loop they are meant to replace.
_L2_CHUNK_ELEMS = 1 << 15


def negative_l2_batch(queries: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Row-wise :func:`negative_l2`.

    Uses the same elementwise subtract/square/sum/sqrt pipeline as the
    scalar function (not the ‖a‖²+‖b‖²−2ab expansion), so each row is
    bit-identical to a scalar call — batched searches reproduce scalar
    rankings exactly, which the attack-equivalence guarantees rely on.
    Queries are processed in chunks sized to keep the ``(chunk, n, d)``
    difference cube cache-resident.
    """
    count, dim = queries.shape
    rows = gallery.shape[0]
    dtype = np.result_type(queries, gallery)
    if count == 0:
        return np.zeros((0, rows), dtype=dtype)
    chunk = max(1, _L2_CHUNK_ELEMS // max(1, rows * dim))
    out = np.empty((count, rows), dtype=dtype)
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        diffs = gallery[None, :, :] - queries[start:stop, None, :]
        np.multiply(diffs, diffs, out=diffs)
        block = out[start:stop]
        np.sqrt(diffs.sum(axis=2), out=block)
        np.negative(block, out=block)
    return out


def cosine_batch(queries: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Row-wise :func:`cosine` (one GEMM instead of B matvecs)."""
    q = queries / (np.linalg.norm(queries, axis=1, keepdims=True) + 1e-12)
    g = gallery / (np.linalg.norm(gallery, axis=1, keepdims=True) + 1e-12)
    return q @ g.T


def hamming_batch(queries: np.ndarray, gallery: np.ndarray) -> np.ndarray:
    """Row-wise :func:`hamming` over sign-binarized codes."""
    q = np.where(queries >= 0.0, 1.0, -1.0)
    g = np.where(gallery >= 0.0, 1.0, -1.0)
    return -((q.shape[1] - q @ g.T) / 2.0)


BATCH_SIMILARITIES: dict[SimilarityFn, BatchSimilarityFn] = {
    negative_l2: negative_l2_batch,
    cosine: cosine_batch,
    hamming: hamming_batch,
}


def batched_similarity(fn: SimilarityFn) -> BatchSimilarityFn:
    """Batched counterpart of a scalar similarity.

    Custom similarity functions without a registered batch variant fall
    back to a per-row loop (correct, just not vectorized).
    """
    batch_fn = BATCH_SIMILARITIES.get(fn)
    if batch_fn is not None:
        return batch_fn

    def fallback(queries: np.ndarray, gallery: np.ndarray) -> np.ndarray:
        return np.stack([fn(query, gallery) for query in queries])

    return fallback
