"""Brute-force feature index over gallery embeddings."""

from __future__ import annotations

import numpy as np

from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, batched_similarity, negative_l2


class FeatureIndex:
    """Flat index mapping features to (video_id, label) rows.

    Rows are appended with :meth:`add`/:meth:`add_batch`; :meth:`search`
    scores the query against every row with the configured similarity and
    returns the ``k`` best entries.  :meth:`search_batch` does the same
    for a ``(B, d)`` query matrix with one vectorized scoring pass and one
    ``argpartition`` for the whole batch.

    The index is append-only and safe for concurrent readers: ids and
    labels are appended *before* their feature row, the matrix cache is
    grow-only (readers validate its length against the rows they need
    and rebuild when stale), and :meth:`search_limited` /
    :meth:`search_batch_limited` score only the first ``rows`` rows so a
    snapshot reader never observes rows appended after its watermark.
    """

    def __init__(self, similarity: SimilarityFn = negative_l2) -> None:
        self.similarity = similarity
        self._features: list[np.ndarray] = []
        self._ids: list[str] = []
        self._labels: list[int] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._features)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Append one gallery row."""
        feature = np.asarray(feature, dtype=np.float64).reshape(-1)
        if self._features and feature.shape != self._features[0].shape:
            raise ValueError(
                f"feature dim mismatch: {feature.shape} vs {self._features[0].shape}"
            )
        # ids/labels first so any visible feature row always has metadata.
        self._ids.append(str(video_id))
        self._labels.append(int(label))
        self._features.append(feature)

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Append many rows in one pass (``features`` is ``(n, d)``).

        Validates the feature dimension once instead of per-row.
        """
        # Mirror the zip() semantics of per-row insertion: extra entries in
        # any argument are ignored.
        count = min(len(ids), len(labels), len(features))
        if count == 0:
            return
        features = np.asarray(features[:count], dtype=np.float64)
        features = features.reshape(count, -1)
        if self._features and features.shape[1:] != self._features[0].shape:
            raise ValueError(
                f"feature dim mismatch: {features.shape[1:]} vs "
                f"{self._features[0].shape}"
            )
        self._ids.extend(str(video_id) for video_id in ids[:count])
        self._labels.extend(int(label) for label in labels[:count])
        self._features.extend(features)

    def _feature_matrix(self, rows: int | None = None) -> np.ndarray:
        """The first ``rows`` gallery rows as an ``(rows, d)`` matrix.

        The cache is grow-only: a cached matrix shorter than ``rows`` is
        rebuilt, a longer one (rows appended by a writer after the
        caller fixed its watermark) is sliced.  Callers must guard
        ``rows == 0``.
        """
        needed = len(self._features) if rows is None else int(rows)
        if needed <= 0:
            # An empty index has no feature dimension to expose; searching
            # it must short-circuit rather than score a bogus (0, 0) array.
            raise RuntimeError("feature matrix requested from an empty index")
        matrix = self._matrix
        if matrix is None or matrix.shape[0] < needed:
            matrix = np.stack(list(self._features))
            self._matrix = matrix
        if matrix.shape[0] == needed:
            return matrix
        return matrix[:needed]

    def _top_k(self, scores: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Exact-sorted head of one score row (argpartition + short sort)."""
        head = np.argpartition(-scores, k - 1)[:k]
        order = head[np.argsort(-scores[head], kind="stable")]
        return [
            RetrievalEntry(self._ids[i], self._labels[i], float(scores[i]))
            for i in order
        ]

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Return the ``k`` most similar entries, best first.

        An empty index returns an empty list for any query shape.
        """
        return self.search_limited(query, k, len(self._features))

    def search_limited(self, query: np.ndarray, k: int,
                       rows: int) -> list[RetrievalEntry]:
        """:meth:`search` restricted to the first ``rows`` rows.

        Snapshot readers pass their per-node watermark so rows appended
        after the snapshot was taken are never scored.
        """
        rows = min(int(rows), len(self._features))
        if rows <= 0:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        scores = self.similarity(query, self._feature_matrix(rows))
        return self._top_k(scores, min(int(k), len(scores)))

    def search_batch(self, queries: np.ndarray, k: int
                     ) -> list[list[RetrievalEntry]]:
        """Top-k for each row of a ``(B, d)`` query matrix.

        Scores all queries in one vectorized similarity call and one
        ``argpartition`` over the batch; per-row results are identical to
        B :meth:`search` calls (the l2 batch kernel is bit-exact).
        """
        return self.search_batch_limited(queries, k, len(self._features))

    def search_batch_limited(self, queries: np.ndarray, k: int,
                             rows: int) -> list[list[RetrievalEntry]]:
        """:meth:`search_batch` restricted to the first ``rows`` rows."""
        queries = np.asarray(queries, dtype=np.float64)
        queries = queries.reshape(queries.shape[0], -1) if queries.ndim > 1 \
            else queries.reshape(1, -1)
        rows = min(int(rows), len(self._features))
        if rows <= 0:
            return [[] for _ in range(queries.shape[0])]
        scores = batched_similarity(self.similarity)(
            queries, self._feature_matrix(rows))
        k = min(int(k), scores.shape[1])
        heads = np.argpartition(-scores, k - 1, axis=1)[:, :k]
        results = []
        for row, head in zip(scores, heads):
            order = head[np.argsort(-row[head], kind="stable")]
            results.append([
                RetrievalEntry(self._ids[i], self._labels[i], float(row[i]))
                for i in order
            ])
        return results

    def labels_of(self) -> list[int]:
        """All stored labels (gallery statistics, metric computation)."""
        return list(self._labels)
