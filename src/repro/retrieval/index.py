"""Brute-force feature index over gallery embeddings."""

from __future__ import annotations

import numpy as np

from repro.retrieval.lists import RetrievalEntry
from repro.retrieval.similarity import SimilarityFn, negative_l2


class FeatureIndex:
    """Flat index mapping features to (video_id, label) rows.

    Rows are appended with :meth:`add`; :meth:`search` scores the query
    against every row with the configured similarity and returns the
    ``k`` best entries.
    """

    def __init__(self, similarity: SimilarityFn = negative_l2) -> None:
        self.similarity = similarity
        self._features: list[np.ndarray] = []
        self._ids: list[str] = []
        self._labels: list[int] = []
        self._matrix: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, video_id: str, label: int, feature: np.ndarray) -> None:
        """Append one gallery row."""
        feature = np.asarray(feature, dtype=np.float64).reshape(-1)
        if self._features and feature.shape != self._features[0].shape:
            raise ValueError(
                f"feature dim mismatch: {feature.shape} vs {self._features[0].shape}"
            )
        self._features.append(feature)
        self._ids.append(str(video_id))
        self._labels.append(int(label))
        self._matrix = None  # invalidate cache

    def add_batch(self, ids: list[str], labels: list[int],
                  features: np.ndarray) -> None:
        """Append many rows at once (``features`` is ``(n, d)``)."""
        for video_id, label, feature in zip(ids, labels, features):
            self.add(video_id, label, feature)

    def _feature_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._features) if self._features else \
                np.empty((0, 0))
        return self._matrix

    def search(self, query: np.ndarray, k: int) -> list[RetrievalEntry]:
        """Return the ``k`` most similar entries, best first."""
        if not self._ids:
            return []
        query = np.asarray(query, dtype=np.float64).reshape(-1)
        scores = self.similarity(query, self._feature_matrix())
        k = min(int(k), len(scores))
        # argpartition then exact sort of the short head.
        head = np.argpartition(-scores, k - 1)[:k]
        order = head[np.argsort(-scores[head], kind="stable")]
        return [
            RetrievalEntry(self._ids[i], self._labels[i], float(scores[i]))
            for i in order
        ]

    def labels_of(self) -> list[int]:
        """All stored labels (gallery statistics, metric computation)."""
        return list(self._labels)
