"""White-box retrieval engine: feature extractor + sharded gallery."""

from __future__ import annotations

import numpy as np

from repro.models.feature_extractor import FeatureExtractor
from repro.retrieval.lists import RetrievalList
from repro.retrieval.nodes import ShardedGallery
from repro.retrieval.similarity import SimilarityFn, create_similarity, negative_l2
from repro.video.types import Video


class RetrievalEngine:
    """``R(·)``: embeds queries and searches the distributed gallery.

    This is the *owner-side* view of the system — it exposes the model.
    Attackers must use :class:`~repro.retrieval.service.RetrievalService`.
    """

    def __init__(self, extractor: FeatureExtractor,
                 similarity: SimilarityFn | str = negative_l2,
                 num_nodes: int = 4) -> None:
        if isinstance(similarity, str):
            similarity = create_similarity(similarity)
        self.extractor = extractor
        self.gallery = ShardedGallery(num_nodes=num_nodes, similarity=similarity)

    # -------------------------------------------------------------- #
    # Gallery management
    # -------------------------------------------------------------- #
    def index_videos(self, videos: list[Video], batch_size: int = 16) -> None:
        """Embed and insert videos into the gallery."""
        features = self.extractor.embed_videos(videos, batch_size=batch_size)
        self.gallery.add_batch(
            [v.video_id for v in videos], [v.label for v in videos], features
        )

    @property
    def gallery_size(self) -> int:
        return len(self.gallery)

    # -------------------------------------------------------------- #
    # Retrieval
    # -------------------------------------------------------------- #
    def retrieve(self, video: Video, m: int) -> RetrievalList:
        """Return ``R^m(v)``: the ``m`` most similar gallery videos."""
        feature = self.extractor.embed_videos(video)[0]
        return RetrievalList(self.gallery.search(feature, m))

    def retrieve_by_feature(self, feature: np.ndarray, m: int) -> RetrievalList:
        """Search with a precomputed embedding (used by defenses)."""
        return RetrievalList(self.gallery.search(feature, m))
