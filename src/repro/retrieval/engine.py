"""White-box retrieval engine: feature extractor + sharded gallery."""

from __future__ import annotations

import numpy as np

from repro.errors import RetrievalUnavailable
from repro.models.feature_extractor import FeatureExtractor
from repro.perf.cache import EmbeddingCache, content_key
from repro.resilience.config import ResilienceConfig
from repro.retrieval.lists import RetrievalList
from repro.retrieval.nodes import ShardedGallery
from repro.retrieval.similarity import SimilarityFn, create_similarity, negative_l2
from repro.video.types import Video


class RetrievalEngine:
    """``R(·)``: embeds queries and searches the distributed gallery.

    This is the *owner-side* view of the system — it exposes the model.
    Attackers must use :class:`~repro.retrieval.service.RetrievalService`.

    Query embeddings flow through a content-hash LRU cache
    (:class:`~repro.perf.cache.EmbeddingCache`): re-querying unchanged
    pixels skips the model forward and returns bit-identical features.
    The cache assumes the extractor's weights are frozen for the engine's
    lifetime (true for every victim service here); call
    :meth:`clear_embedding_cache` after mutating them.  ``cache_size=0``
    (or ``REPRO_EMBED_CACHE=0``) disables caching.
    """

    def __init__(self, extractor: FeatureExtractor,
                 similarity: SimilarityFn | str = negative_l2,
                 num_nodes: int = 4, cache_size: int | None = None,
                 resilience: ResilienceConfig | None = None,
                 index_tier: str | None = None,
                 placement: str = "round-robin") -> None:
        if isinstance(similarity, str):
            similarity = create_similarity(similarity)
        self.extractor = extractor
        self.gallery = ShardedGallery(num_nodes=num_nodes,
                                      similarity=similarity,
                                      resilience=resilience,
                                      index_tier=index_tier,
                                      placement=placement)
        self.embedding_cache = EmbeddingCache(cache_size)
        #: None = follow the global REPRO_NN_FUSE switch.
        self._fuse: bool | None = None
        #: None = follow the global REPRO_ROUTER switch.
        self._router = None

    def configure_resilience(self, resilience: ResilienceConfig | None) -> None:
        """Install (or clear) a resilience config on the gallery.

        Replication is a placement property, so changing it requires an
        empty gallery; runtime knobs (retry, breaker, deadlines, hedging)
        can change at any time.
        """
        self.gallery.set_resilience(resilience)

    def configure_index_tier(self, tier: str | None) -> None:
        """Switch the gallery's per-node index tier (see
        :mod:`repro.hashindex.tiers`); stored rows are re-ingested."""
        self.gallery.set_index_tier(tier)

    def configure_fuse(self, fuse: bool | None) -> None:
        """Force trace-and-fuse query embedding on/off for this engine.

        ``None`` reverts to the global ``REPRO_NN_FUSE`` switch
        (:func:`repro.nn.jit.enabled`).  Replay is bit-identical to
        eager, so flipping this never changes retrieval results.
        """
        self._fuse = None if fuse is None else bool(fuse)

    def configure_router(self, router=None) -> None:
        """Install a cost-model router for this engine's latency choices.

        Accepts a :class:`~repro.router.Router`, ``True`` (enable,
        loading the default calibration profile if one exists), ``False``
        (disable, overriding ``REPRO_ROUTER``), or ``None`` (follow the
        global env switch).  Routing only ever picks among semantically
        equivalent implementations, so this never changes results.
        """
        from repro.router import DISABLED, CalibrationProfile, Router
        from repro.router.profile import default_profile_path

        if router is None or isinstance(router, Router):
            self._router = router
        elif router is False:
            self._router = DISABLED
        elif router is True:
            try:
                profile = CalibrationProfile.load(default_profile_path())
            except FileNotFoundError:
                profile = None  # cold start: decisions stay at defaults
            self._router = Router(profile=profile, enabled=True)
        else:
            raise TypeError(
                f"router must be a Router, bool, or None; got {router!r}")

    def _router_effective(self):
        """The engine's router, else the process-wide active one."""
        if self._router is not None:
            return self._router
        from repro.router import active_router

        return active_router()

    def _fuse_effective(self, override: bool | None = None) -> bool:
        """Resolve the fuse switch for the next embedding batch.

        An installed :class:`~repro.resilience.FaultPlan` forces eager:
        fault-injection runs audit the exact op-by-op execution, and the
        suppression is surfaced on the ``nn.jit.fallbacks`` counter.
        ``override`` short-circuits the engine/global switches — the
        pooled serving executor passes ``False`` because the fuse replay
        arenas are per-model, not per-thread.
        """
        from repro.nn import jit

        if override is not None:
            fuse = bool(override)
        else:
            fuse = jit.enabled() if self._fuse is None else self._fuse
        if fuse and getattr(self.gallery, "fault_plan", None) is not None:
            from repro.obs import counter

            counter("nn.jit.fallbacks", reason="fault_plan").inc()
            return False
        return fuse

    @property
    def index_tier(self) -> str:
        return self.gallery.index_tier

    @property
    def resilience(self) -> ResilienceConfig | None:
        return self.gallery.resilience

    # -------------------------------------------------------------- #
    # Embedding (cached)
    # -------------------------------------------------------------- #
    def embed_queries(self, videos: list[Video],
                      batch_size: int = 16,
                      fuse_override: bool | None = None) -> np.ndarray:
        """Embed videos through the cache; misses share one forward batch."""
        if not videos:
            return np.zeros((0, self.extractor.feature_dim))
        fuse = self._fuse_effective(fuse_override)
        if not self.embedding_cache.enabled or \
                self._router_effective().decide(
                    "embed_cache", "default", ("off", "on"), "on") == "off":
            # Router bypass: for workloads that never repeat pixels the
            # content-hash probes are pure overhead; hits are
            # bit-identical to fresh forwards either way (the
            # ``retrieval.cached_vs_fresh`` oracle), so this is latency.
            return self.extractor.embed_videos(videos, batch_size=batch_size,
                                               fuse=fuse)
        keys = [content_key(video.pixels) for video in videos]
        features: list[np.ndarray | None] = [
            self.embedding_cache.get(key) for key in keys
        ]
        miss_rows = [i for i, feature in enumerate(features) if feature is None]
        if miss_rows:
            fresh = self.extractor.embed_videos(
                [videos[i] for i in miss_rows], batch_size=batch_size,
                fuse=fuse)
            for row, feature in zip(miss_rows, fresh):
                self.embedding_cache.put(keys[row], feature)
                features[row] = feature
        return np.stack(features)

    def clear_embedding_cache(self) -> None:
        """Drop cached embeddings (required after changing model weights)."""
        self.embedding_cache.clear()

    # -------------------------------------------------------------- #
    # Gallery management
    # -------------------------------------------------------------- #
    def index_videos(self, videos: list[Video], batch_size: int = 16) -> None:
        """Embed and insert videos into the gallery."""
        features = self.embed_queries(videos, batch_size=batch_size)
        self.gallery.add_batch(
            [v.video_id for v in videos], [v.label for v in videos], features
        )

    @property
    def gallery_size(self) -> int:
        return len(self.gallery)

    # -------------------------------------------------------------- #
    # Online gallery mutation (churn)
    # -------------------------------------------------------------- #
    def enable_churn(self) -> None:
        """Allow live add/delete/re-embed on the gallery (idempotent)."""
        self.gallery.enable_churn()

    def add_video(self, video: Video) -> None:
        """Embed and insert one new video into a live gallery."""
        self.gallery.enable_churn()
        feature = self.embed_queries([video])[0]
        self.gallery.add(video.video_id, video.label, feature)

    def remove_video(self, video_id: str) -> None:
        """Tombstone a live gallery video."""
        self.gallery.delete(video_id)

    def reembed_video(self, video: Video) -> None:
        """Re-embed a live gallery video (e.g. after content edits)."""
        feature = self.embed_queries([video])[0]
        self.gallery.reembed(video.video_id, video.label, feature)

    # -------------------------------------------------------------- #
    # Retrieval
    # -------------------------------------------------------------- #
    def retrieve(self, video: Video, m: int) -> RetrievalList:
        """Return ``R^m(v)``: the ``m`` most similar gallery videos."""
        feature = self.embed_queries([video])[0]
        return RetrievalList(self.gallery.search(feature, m))

    def retrieve_batch(self, videos: list[Video], m: int,
                       snapshots: list | None = None,
                       fuse_override: bool | None = None
                       ) -> list[RetrievalList]:
        """``R^m`` for every video, embedded in one forward batch.

        Identical results to per-video :meth:`retrieve` calls; the model
        forward, gallery scoring, and top-k all run batched.

        ``snapshots`` pins each query to the
        :class:`~repro.retrieval.snapshot.GallerySnapshot` it was
        admitted under (one per video): queries sharing a snapshot are
        still scored in one vectorized pass per group, and per-query
        results match sequential :meth:`retrieve` calls made at the
        corresponding gallery versions.

        With a :class:`~repro.resilience.FaultPlan` installed the gallery
        legs run per query instead: the fault clock, rng draws, and the
        index at which an outage interrupts the batch are then all
        bit-identical to a sequential loop.  A propagating
        :class:`~repro.errors.RetrievalUnavailable` is annotated with the
        already-served prefix (``served``, ``served_count``) so callers
        can settle per-video serve-or-refund accounting.
        """
        if not videos:
            return []
        features = self.embed_queries(videos, fuse_override=fuse_override)
        if snapshots is not None:
            return self._retrieve_batch_pinned(features, m, snapshots)
        scalar_timer = None
        if getattr(self.gallery, "fault_plan", None) is None:
            # Per-row results of search_batch are bit-exact against the
            # scalar loop (the ``retrieval.batched_vs_sequential``
            # oracle), so the router may pick either on measured cost;
            # tiny batches on large galleries can favour the loop.
            from repro.router import batch_size_key

            router = self._router_effective()
            key = batch_size_key(len(features))
            choice = router.decide("search", key, ("scalar", "batched"),
                                   "batched") if len(features) > 1 \
                else "batched"
            if choice == "batched":
                timer = router.timed("search", key, "batched") \
                    if router.enabled else None
                try:
                    if timer is not None:
                        timer.__enter__()
                    results = [
                        RetrievalList(entries)
                        for entries in self.gallery.search_batch(features, m)
                    ]
                except RetrievalUnavailable as exc:
                    # Unavailability without a fault plan is node *state*
                    # (downed nodes), constant across the batch: a
                    # sequential loop would have failed on its very first
                    # query.
                    exc.served = []
                    exc.served_count = 0
                    raise
                finally:
                    if timer is not None:
                        timer.__exit__()
                return results
            if router.enabled:
                scalar_timer = router.timed("search", key, "scalar")
        results = []
        if scalar_timer is not None:
            scalar_timer.__enter__()
        try:
            for feature in features:
                try:
                    results.append(
                        RetrievalList(self.gallery.search(feature, m)))
                except RetrievalUnavailable as exc:
                    exc.served = results
                    exc.served_count = len(results)
                    raise
        finally:
            if scalar_timer is not None:
                scalar_timer.__exit__()
        return results

    def _retrieve_batch_pinned(self, features: np.ndarray, m: int,
                               snapshots: list) -> list[RetrievalList]:
        """Batched search with one pinned snapshot per query.

        Consecutive runs of queries sharing a snapshot version score in
        one :meth:`ShardedGallery.search_batch` call; an interrupting
        :class:`RetrievalUnavailable` is annotated with the served
        prefix like the fault-plan path.
        """
        if len(snapshots) != len(features):
            raise ValueError(
                f"got {len(snapshots)} snapshots for {len(features)} queries")
        results: list[RetrievalList] = []
        row = 0
        try:
            while row < len(features):
                snap = snapshots[row]
                end = row + 1
                while end < len(features) and (
                        snapshots[end] is snap
                        or (snap is not None and snapshots[end] is not None
                            and snapshots[end].version == snap.version)):
                    end += 1
                for entries in self.gallery.search_batch(
                        features[row:end], m, snapshot=snap):
                    results.append(RetrievalList(entries))
                row = end
        except RetrievalUnavailable as exc:
            exc.served = results
            exc.served_count = len(results)
            raise
        return results

    def retrieve_by_feature(self, feature: np.ndarray, m: int) -> RetrievalList:
        """Search with a precomputed embedding (used by defenses)."""
        return RetrievalList(self.gallery.search(feature, m))
