"""DNN-based video retrieval system (paper Figure 1).

A :class:`~repro.retrieval.engine.RetrievalEngine` embeds a query video
with a trained :class:`~repro.models.FeatureExtractor` and searches a
gallery of features sharded across simulated distributed
:class:`~repro.retrieval.nodes.DataNode`s.  Attackers interact only with
the :class:`~repro.retrieval.service.RetrievalService` facade, which
exposes the retrieval list ``R^m(v)`` and nothing else (black-box threat
model), while counting queries.
"""

from repro.retrieval.similarity import (
    negative_l2,
    cosine,
    SIMILARITIES,
    BATCH_SIMILARITIES,
    batched_similarity,
    cosine_batch,
    create_similarity,
    hamming_batch,
    negative_l2_batch,
)
from repro.errors import (
    DeadlineExceeded,
    NodeDownError,
    QueryBudgetExceeded,
    RetrievalError,
    RetrievalUnavailable,
)
from repro.retrieval.lists import RetrievalEntry, RetrievalList
from repro.retrieval.protocol import Index
from repro.retrieval.index import FeatureIndex
from repro.retrieval.ann import IVFIndex
from repro.retrieval.config import Preprocessor, ServiceConfig
from repro.retrieval.nodes import DataNode, ShardedGallery
from repro.retrieval.placement import ConsistentHashRing, stable_hash
from repro.retrieval.snapshot import GallerySnapshot, filter_entries
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.service import RetrievalService

__all__ = [
    "negative_l2",
    "cosine",
    "SIMILARITIES",
    "BATCH_SIMILARITIES",
    "batched_similarity",
    "cosine_batch",
    "hamming_batch",
    "negative_l2_batch",
    "create_similarity",
    "RetrievalEntry",
    "RetrievalList",
    "Index",
    "FeatureIndex",
    "IVFIndex",
    "DataNode",
    "ShardedGallery",
    "ConsistentHashRing",
    "stable_hash",
    "GallerySnapshot",
    "filter_entries",
    "NodeDownError",
    "DeadlineExceeded",
    "RetrievalError",
    "RetrievalUnavailable",
    "RetrievalEngine",
    "RetrievalService",
    "ServiceConfig",
    "Preprocessor",
    "QueryBudgetExceeded",
]
