"""Immutable gallery snapshots for snapshot-consistent reads.

A mutable :class:`~repro.retrieval.nodes.ShardedGallery` hands every
reader a :class:`GallerySnapshot` — a frozen view of *one* gallery
version.  A query evaluated against a snapshot sees exactly the rows
that were live at that version: rows added later are hidden by the
per-node ``watermarks`` (physical row counts captured at snapshot
time), rows deleted later stay visible because their tombstone version
in ``dead_at`` exceeds the snapshot's, and rows deleted at or before
the snapshot are filtered out (the per-node ``node_dead`` counts size
the over-fetch that guarantees ``k`` live results still surface).

The dictionaries are *shared* with the gallery, not copied: mutations
only ever add keys with versions greater than any existing snapshot,
so an old snapshot's filter decisions never change.  That makes
snapshots O(nodes) to build and free to hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence


@dataclass(frozen=True)
class GallerySnapshot:
    """One immutable version of a sharded gallery."""

    #: Monotonic version counter; bumped once per mutation.
    version: int
    #: The per-node index objects pinned by this snapshot.  Tier swaps
    #: and compactions install *new* index objects, so a reader holding
    #: this tuple never observes a half-built index.
    indexes: tuple
    #: Physical rows per node at snapshot time; rows appended later sit
    #: beyond the watermark and are invisible to this snapshot.
    watermarks: tuple
    #: Tombstoned rows still physically present per node (within the
    #: watermark); used to over-fetch so filtering keeps ``k`` results.
    node_dead: tuple
    #: rowid -> version at which the row was tombstoned (shared, grow-only).
    dead_at: Mapping
    #: rowid -> version at which the row was added (shared, grow-only;
    #: rows from before churn was enabled are absent and default to 0).
    added_at: Mapping
    #: rowid -> public video id for re-embedded generations (shared).
    alias: Mapping
    #: Live (visible) row count at this version.
    live_count: int
    #: Index tier the pinned indexes were built with.
    tier: str

    def visible(self, rowid: str) -> bool:
        """Is the physical row ``rowid`` live at this version?"""
        dead = self.dead_at.get(rowid)
        if dead is not None and dead <= self.version:
            return False
        return self.added_at.get(rowid, 0) <= self.version

    def public_id(self, rowid: str) -> str:
        """Map a physical rowid to its public video id."""
        return self.alias.get(rowid, rowid)


def filter_entries(entries: Sequence, snapshot: GallerySnapshot, k: int,
                   entry_type) -> list:
    """Keep the first ``k`` entries visible at ``snapshot``.

    Re-embedded generations are mapped back to their public video id so
    callers never observe internal rowids.
    """
    out: list = []
    for entry in entries:
        rowid = entry.video_id
        if not snapshot.visible(rowid):
            continue
        public = snapshot.alias.get(rowid)
        if public is not None:
            entry = entry_type(public, entry.label, entry.score)
        out.append(entry)
        if len(out) >= k:
            break
    return out


__all__ = ["GallerySnapshot", "filter_entries"]
