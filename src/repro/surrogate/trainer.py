"""Training the surrogate model ``S(·)`` on the stolen ranking dataset.

Optimizes the ranked-triplet loss of Section IV-B-1 (margin γ = 0.2):
the surrogate's embedding must order each stolen result list by distance
to its query, reproducing the victim's ranking geometry.  (The paper
prints the objective as an ``arg max``; as in all margin-ranking
formulations the trained direction is the *minimization* of the hinge on
mis-ordered pairs, which is what we do.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.losses.triplet import RankedListTripletLoss
from repro.models.feature_extractor import FeatureExtractor
from repro.models.registry import create_feature_extractor
from repro.nn import Adam, Tensor
from repro.obs import counter, gauge, span
from repro.surrogate.stealing import StolenRankingDataset
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import to_model_input

logger = get_logger("surrogate")


@dataclass
class SurrogateTrainer:
    """Fit a surrogate extractor to a stolen ranking dataset."""

    margin: float = 0.2
    lr: float = 5e-3
    epochs: int = 6
    rng: object = None

    history: list[float] = field(default_factory=list)

    def train(self, surrogate: FeatureExtractor,
              dataset: StolenRankingDataset) -> list[float]:
        """Run the optimization; returns per-epoch mean losses."""
        rng = seeded_rng(self.rng)
        loss_fn = RankedListTripletLoss(margin=self.margin)
        optimizer = Adam(surrogate.parameters(), lr=self.lr)
        surrogate.train()
        for epoch in range(self.epochs):
            epoch_losses = []
            order = rng.permutation(len(dataset.rows))
            with span("surrogate.epoch", epoch=epoch + 1):
                for row_index in order:
                    row = dataset.rows[int(row_index)]
                    if len(row.returned) < 2:
                        continue
                    with span("surrogate.step"):
                        batch = [row.query] + row.returned
                        inputs = Tensor(to_model_input(batch))
                        optimizer.zero_grad()
                        embeddings = surrogate(inputs)
                        loss = loss_fn(embeddings[0], embeddings[1:])
                        if not loss.requires_grad:
                            continue
                        loss.backward()
                        optimizer.step()
                        epoch_losses.append(loss.item())
                    counter("surrogate.steps").inc()
            counter("surrogate.epochs").inc()
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            gauge("surrogate.epoch_loss").set(mean_loss)
            self.history.append(mean_loss)
            logger.info("surrogate epoch %d/%d loss=%.4f",
                        epoch + 1, self.epochs, mean_loss)
        surrogate.eval()
        return self.history


def train_surrogate(dataset: StolenRankingDataset, backbone: str = "c3d",
                    feature_dim: int = 64, width: int = 4, epochs: int = 6,
                    lr: float = 5e-3, seed: int = 0) -> FeatureExtractor:
    """Build and train a surrogate extractor in one call."""
    rng = seeded_rng(seed)
    surrogate = create_feature_extractor(
        backbone, feature_dim=feature_dim, width=width, rng=rng
    )
    trainer = SurrogateTrainer(lr=lr, epochs=epochs, rng=rng)
    trainer.train(surrogate, dataset)
    surrogate.requires_grad_(False)
    return surrogate
