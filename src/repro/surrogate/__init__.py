"""Surrogate-model construction by model stealing (paper Section IV-B-1)."""

from repro.surrogate.stealing import StolenRankingDataset, StolenRow, steal_training_set
from repro.surrogate.trainer import SurrogateTrainer, train_surrogate

__all__ = [
    "StolenRankingDataset",
    "StolenRow",
    "steal_training_set",
    "SurrogateTrainer",
    "train_surrogate",
]
