"""Building the surrogate training set ``T`` by querying the victim.

Implements Steps 1–3 of Section IV-B-1:

1. Upload a random video ``v_r`` to ``R(·)``, obtain ``R^m(v_r)``, and
   append the ranked triples to ``T``.
2. Uniformly select ``M`` videos from ``R^m(v_r)`` and repeat Step 1 on
   each (crawl the neighbourhood).
3. Repeat Steps 1–2 for ``Z`` rounds.

Each stored row keeps the query video together with its ranked returned
videos, which is exactly the supervision the ranked-triplet surrogate
loss consumes (``T = {⟨v_r, v_i, v_j⟩ | i < j}`` expands pairwise inside
the loss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.retrieval.service import RetrievalService
from repro.utils.seeding import seeded_rng
from repro.video.types import Video


@dataclass
class StolenRow:
    """One stolen supervision row: a query and its ranked results."""

    query: Video
    returned: list[Video]

    @property
    def num_triples(self) -> int:
        """Number of ⟨v, v_i, v_j⟩ triples this row expands to."""
        m = len(self.returned)
        return m * (m - 1) // 2


class StolenRankingDataset:
    """The stolen training set ``T`` with train/test splitting."""

    def __init__(self, rows: list[StolenRow], queries_spent: int) -> None:
        self.rows = list(rows)
        self.queries_spent = int(queries_spent)

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def num_samples(self) -> int:
        """Total videos involved (the paper counts dataset size in samples)."""
        seen = {row.query.video_id for row in self.rows}
        for row in self.rows:
            seen.update(video.video_id for video in row.returned)
        return len(seen)

    def split(self, train_ratio: float = 0.7,
              rng=None) -> tuple["StolenRankingDataset", "StolenRankingDataset"]:
        """Random 7:3 row split (paper's surrogate train/test protocol)."""
        rng = seeded_rng(rng)
        order = rng.permutation(len(self.rows))
        cut = int(round(train_ratio * len(self.rows)))
        train_rows = [self.rows[i] for i in order[:cut]]
        test_rows = [self.rows[i] for i in order[cut:]]
        return (
            StolenRankingDataset(train_rows, self.queries_spent),
            StolenRankingDataset(test_rows, 0),
        )

    def truncate(self, max_rows: int) -> "StolenRankingDataset":
        """Keep only the first ``max_rows`` rows (surrogate-size sweeps)."""
        return StolenRankingDataset(self.rows[:max_rows], self.queries_spent)


def steal_training_set(service: RetrievalService, seed_videos: list[Video],
                       video_lookup: dict[str, Video], rounds: int = 3,
                       branch: int = 3, rng=None) -> StolenRankingDataset:
    """Crawl the victim service and build the stolen dataset ``T``.

    Parameters
    ----------
    service:
        The black-box victim service.
    seed_videos:
        The attacker's pool of random probe videos (``v_r`` candidates).
    video_lookup:
        id → video map for returned items; models the attacker downloading
        the publicly served result videos.
    rounds:
        ``Z`` — how many seed expansions to perform.
    branch:
        ``M`` — how many returned videos to re-query per expansion.
    """
    rng = seeded_rng(rng)
    rows: list[StolenRow] = []
    queried: set[str] = set()
    start_count = service.query_count

    def query_once(video: Video) -> StolenRow | None:
        if video.video_id in queried:
            return None
        queried.add(video.video_id)
        result = service.query(video)
        returned = [
            video_lookup[entry.video_id]
            for entry in result
            if entry.video_id in video_lookup
        ]
        row = StolenRow(query=video, returned=returned)
        rows.append(row)
        return row

    seeds = list(seed_videos)
    rng.shuffle(seeds)
    for round_index in range(int(rounds)):
        if round_index >= len(seeds):
            break
        root_row = query_once(seeds[round_index])
        if root_row is None or not root_row.returned:
            continue
        # Step 2: uniformly select M returned videos and query each.
        pool = root_row.returned
        picks = rng.choice(len(pool), size=min(int(branch), len(pool)),
                           replace=False)
        for pick in picks:
            query_once(pool[int(pick)])

    return StolenRankingDataset(rows, service.query_count - start_count)
