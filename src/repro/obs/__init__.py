"""Observability: metrics, tracing, and autograd profiling.

The subsystem has four parts, wired through the retrieval/attack/training
stack (see DESIGN.md §8 "Observability"):

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms
  with labels (query accounting, node health, objective levels);
* :mod:`repro.obs.tracing` — nestable wall-clock spans with a no-op fast
  path when ``REPRO_TRACE=0``;
* :mod:`repro.obs.profiler` — per-op-type autograd forward/backward
  profiler hooking the ``repro.nn`` dispatch points;
* :mod:`repro.obs.export` — flat JSON reports and Chrome-trace files
  under ``results/obs/``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    thread_safe_metrics,
)
from repro.obs.tracing import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
    use_env_tracing,
)
from repro.obs.profiler import OpProfiler
from repro.obs.export import (
    metrics_report,
    obs_dir,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OpProfiler",
    "Tracer",
    "counter",
    "disable_tracing",
    "enable_tracing",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "metrics_report",
    "obs_dir",
    "span",
    "thread_safe_metrics",
    "traced",
    "tracing_enabled",
    "use_env_tracing",
    "write_chrome_trace",
    "write_metrics_json",
]
