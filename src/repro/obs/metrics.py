"""Process-local metrics registry: counters, gauges, bucketed histograms.

The registry is the numeric half of ``repro.obs`` (spans are the
structural half, see :mod:`repro.obs.tracing`).  Instruments are
get-or-created by ``(name, labels)`` so hot paths can either cache the
returned handle or re-resolve it every call — both hit the same object.
Query efficiency is a headline metric of the DUO paper, so the registry
is designed around cheap increments (a dict lookup + float add) and a
snapshot/reset cycle that experiment runners use to emit one JSON
sidecar per table/figure run.

Conventions
-----------
* Metric names are dotted lowercase (``retrieval.queries``).
* Labels are keyword arguments with string-able values
  (``counter("gallery.node_skipped", node="node-2")``).
* ``snapshot()`` returns plain JSON-able dicts; ``reset()`` zeroes
  values **in place** so cached handles stay live across runs.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Iterable

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

LabelKey = tuple[tuple[str, str], ...]

#: Shared write lock, installed only while a worker pool is live (see
#: :func:`thread_safe_metrics`).  ``None`` — the overwhelmingly common
#: case — keeps increments a plain float add, so the obs-overhead bench
#: gates are unaffected when no threads are running.
_MT_LOCK: threading.Lock | None = None
_MT_DEPTH = 0


class thread_safe_metrics:
    """Context manager making instrument writes thread-safe while open.

    The serving worker pool wraps its run in this so counter increments
    from worker threads cannot lose updates; nesting is supported and
    the lock is removed when the outermost context exits.
    """

    def __enter__(self) -> None:
        global _MT_LOCK, _MT_DEPTH
        _MT_DEPTH += 1
        if _MT_LOCK is None:
            _MT_LOCK = threading.Lock()

    def __exit__(self, *exc_info) -> None:
        global _MT_LOCK, _MT_DEPTH
        _MT_DEPTH -= 1
        if _MT_DEPTH <= 0:
            _MT_DEPTH = 0
            _MT_LOCK = None


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_key(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        lock = _MT_LOCK
        if lock is None:
            self.value += amount
        else:
            with lock:
                self.value += amount

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self) -> float:
        return self.value


class Gauge:
    """Last-written value (objective levels, budget remaining, …)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        lock = _MT_LOCK
        if lock is None:
            base = 0.0 if math.isnan(self.value) else self.value
            self.value = base + amount
        else:
            with lock:
                base = 0.0 if math.isnan(self.value) else self.value
                self.value = base + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _reset(self) -> None:
        self.value = float("nan")

    def _snapshot(self) -> float:
        return self.value


class Histogram:
    """Cumulative bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count",
                 "total", "minimum", "maximum")

    def __init__(self, name: str, labels: LabelKey = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._reset()

    def observe(self, value: float) -> None:
        """Record one sample."""
        lock = _MT_LOCK
        if lock is not None:
            with lock:
                self._observe(float(value))
            return
        self._observe(float(value))

    def _observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1  # +Inf overflow bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def _reset(self) -> None:
        # One extra slot for the implicit +Inf bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def _snapshot(self) -> dict:
        buckets = {f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.bucket_counts)}
        buckets["le_inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean if self.count else None,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Process-local instrument store, keyed by ``(name, labels)``.

    Thread-safe on instrument *creation*; increments themselves are plain
    float ops (the GIL makes them atomic enough for accounting purposes,
    and the repo's hot paths are single-threaded).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        # Interned plain-name handles: label-less lookups (the common
        # hot-path shape) skip the sorted label-tuple build entirely.
        self._plain_counters: dict[str, Counter] = {}
        self._plain_gauges: dict[str, Gauge] = {}
        self._plain_histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------------- #
    # Instrument access (get-or-create)
    # -------------------------------------------------------------- #
    def counter(self, name: str, **labels) -> Counter:
        if not labels:
            instrument = self._plain_counters.get(name)
            if instrument is None:
                with self._lock:
                    instrument = self._counters.setdefault(
                        (name, ()), Counter(name, ()))
                    self._plain_counters[name] = instrument
            return instrument
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, key[1]))
        return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        if not labels:
            instrument = self._plain_gauges.get(name)
            if instrument is None:
                with self._lock:
                    instrument = self._gauges.setdefault(
                        (name, ()), Gauge(name, ()))
                    self._plain_gauges[name] = instrument
            return instrument
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(key, Gauge(name, key[1]))
        return instrument

    def histogram(self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        if not labels:
            instrument = self._plain_histograms.get(name)
            if instrument is None:
                with self._lock:
                    instrument = self._histograms.setdefault(
                        (name, ()), Histogram(name, (), buckets))
                    self._plain_histograms[name] = instrument
            return instrument
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, key[1], buckets))
        return instrument

    # -------------------------------------------------------------- #
    # Iteration (router cost model, dashboards)
    # -------------------------------------------------------------- #
    def iter_histograms(self, prefix: str = ""):
        """Yield ``(name, labels_dict, histogram)`` for matching names."""
        with self._lock:
            items = list(self._histograms.items())
        for (name, key), instrument in items:
            if name.startswith(prefix):
                yield name, dict(key), instrument

    def iter_gauges(self, prefix: str = ""):
        """Yield ``(name, labels_dict, gauge)`` for matching names."""
        with self._lock:
            items = list(self._gauges.items())
        for (name, key), instrument in items:
            if name.startswith(prefix):
                yield name, dict(key), instrument

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def reset(self) -> None:
        """Zero every instrument in place (handles stay valid)."""
        with self._lock:
            for store in (self._counters, self._gauges, self._histograms):
                for instrument in store.values():
                    instrument._reset()

    def clear(self) -> None:
        """Drop every instrument (cached handles become orphans)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._plain_counters.clear()
            self._plain_gauges.clear()
            self._plain_histograms.clear()

    # -------------------------------------------------------------- #
    # Export
    # -------------------------------------------------------------- #
    def snapshot(self) -> dict:
        """Return a JSON-able ``{counters, gauges, histograms}`` dict."""
        with self._lock:
            counters = {
                _format_key(name, key): instrument._snapshot()
                for (name, key), instrument in sorted(self._counters.items())
            }
            gauges = {}
            for (name, key), instrument in sorted(self._gauges.items()):
                value = instrument._snapshot()
                gauges[_format_key(name, key)] = (
                    None if math.isnan(value) else value)
            histograms = {
                _format_key(name, key): instrument._snapshot()
                for (name, key), instrument in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize :meth:`snapshot` as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


#: The default process-wide registry used by the convenience functions.
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default registry."""
    return _DEFAULT


def counter(name: str, **labels) -> Counter:
    """Get-or-create a counter on the default registry."""
    return _DEFAULT.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _DEFAULT.gauge(name, **labels)


def histogram(name: str, buckets: Iterable[float] = DEFAULT_BUCKETS,
              **labels) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return _DEFAULT.histogram(name, buckets, **labels)
