"""Op-level autograd profiler for the ``repro.nn`` engine.

:class:`OpProfiler` hooks the three dispatch points of the nn stack:

* **op construction** (``Tensor._make``) — counts every autograd op and
  the bytes/elements of its output tensor (the forward fan-out);
* **backward dispatch** (``_dispatch_backward``) — wall time of each
  op's backward closure, aggregated per op type (the autograd hot path);
* **module forward** (``Module.__call__``) — wall time per module class
  (``Conv3d``, ``BatchNorm3d``, …).  Container modules include their
  children's time, so read this column hierarchically.

The hooks are plain module-level callables checked against ``None`` on
the hot path, so an un-profiled run pays one global read per op (the
``test_profiler`` micro-bench pins that overhead below 2% of a small
op's cost).  Per-op aggregates are interned slotted records — the hook
bodies do attribute adds on a cached object instead of building or
re-hashing dicts on every op call; the dict-shaped ``ops`` /
``backward`` / ``modules`` views are materialized lazily for reporting.

The profiler nests: entering saves whatever hooks were installed and
chains to them, so an outer profiler keeps aggregating through an inner
one.

Usage::

    from repro.obs import OpProfiler

    with OpProfiler() as prof:
        loss = model(batch).sum()
        loss.backward()
    print(prof.table())
"""

from __future__ import annotations


def _nn():
    # Imported lazily: repro.obs is a leaf dependency of the whole stack
    # (even repro.utils.timing pulls in repro.obs.tracing), so importing
    # repro.nn at module level would create an import cycle.
    from repro.nn import modules, tensor

    return modules, tensor


class _OpStats:
    """Interned per-op forward record (attribute adds, no dict hashing)."""

    __slots__ = ("count", "output_bytes", "output_elems")

    def __init__(self) -> None:
        self.count = 0
        self.output_bytes = 0
        self.output_elems = 0

    def as_dict(self) -> dict[str, int]:
        return {"count": self.count, "output_bytes": self.output_bytes,
                "output_elems": self.output_elems}


class _TimeStats:
    """Interned per-key wall-time record."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    def as_dict(self) -> dict[str, float]:
        return {"count": self.count, "total_s": self.total_s}


class OpProfiler:
    """Aggregate per-op-type forward counts/sizes and backward times."""

    def __init__(self, profile_modules: bool = True) -> None:
        self.profile_modules = bool(profile_modules)
        self._saved_autograd = (None, None)
        self._saved_call = None
        # Pre-interned chain targets: the hook bodies read one attribute
        # instead of indexing the saved-hooks tuple on every op.
        self._chain_make = None
        self._chain_backward = None
        self.reset()

    def reset(self) -> None:
        """Drop all aggregated statistics."""
        self._ops: dict[str, _OpStats] = {}
        self._backward: dict[str, _TimeStats] = {}
        self._modules: dict[str, _TimeStats] = {}

    # -------------------------------------------------------------- #
    # Dict-shaped views (reporting surface; hot path never builds these)
    # -------------------------------------------------------------- #
    @property
    def ops(self) -> dict[str, dict[str, int]]:
        """op → ``{count, output_bytes, output_elems}``."""
        return {op: stats.as_dict() for op, stats in self._ops.items()}

    @property
    def backward(self) -> dict[str, dict[str, float]]:
        """op → ``{count, total_s}``."""
        return {op: stats.as_dict() for op, stats in self._backward.items()}

    @property
    def modules(self) -> dict[str, dict[str, float]]:
        """module class name → ``{count, total_s}``."""
        return {cls: stats.as_dict() for cls, stats in self._modules.items()}

    # -------------------------------------------------------------- #
    # Hook bodies
    # -------------------------------------------------------------- #
    def _on_make(self, op: str, data) -> None:
        entry = self._ops.get(op)
        if entry is None:
            entry = self._ops[op] = _OpStats()
        entry.count += 1
        entry.output_bytes += data.nbytes
        entry.output_elems += data.size
        chained = self._chain_make
        if chained is not None:
            chained(op, data)

    def _on_backward(self, op: str, seconds: float) -> None:
        entry = self._backward.get(op)
        if entry is None:
            entry = self._backward[op] = _TimeStats()
        entry.count += 1
        entry.total_s += seconds
        chained = self._chain_backward
        if chained is not None:
            chained(op, seconds)

    def _on_module(self, module_type: str, seconds: float) -> None:
        entry = self._modules.get(module_type)
        if entry is None:
            entry = self._modules[module_type] = _TimeStats()
        entry.count += 1
        entry.total_s += seconds
        if self._saved_call is not None:
            self._saved_call(module_type, seconds)

    # -------------------------------------------------------------- #
    # Context manager protocol
    # -------------------------------------------------------------- #
    def __enter__(self) -> "OpProfiler":
        modules, tensor = _nn()
        self._saved_autograd = tensor.get_autograd_hooks()
        self._chain_make, self._chain_backward = self._saved_autograd
        tensor.set_autograd_hooks(self._on_make, self._on_backward)
        if self.profile_modules:
            self._saved_call = modules.get_call_hook()
            modules.set_call_hook(self._on_module)
        return self

    def __exit__(self, *exc: object) -> None:
        modules, tensor = _nn()
        tensor.set_autograd_hooks(*self._saved_autograd)
        self._saved_autograd = (None, None)
        self._chain_make = None
        self._chain_backward = None
        if self.profile_modules:
            modules.set_call_hook(self._saved_call)
            self._saved_call = None

    # -------------------------------------------------------------- #
    # Reporting
    # -------------------------------------------------------------- #
    def summary(self) -> dict:
        """Return a JSON-able ``{ops, backward, modules}`` report."""
        return {
            "ops": {op: stats.as_dict()
                    for op, stats in sorted(self._ops.items())},
            "backward": {
                op: {**stats.as_dict(),
                     "mean_s": stats.total_s / stats.count}
                for op, stats in sorted(self._backward.items(),
                                        key=lambda kv: -kv[1].total_s)
            },
            "modules": {
                cls: {**stats.as_dict(),
                      "mean_s": stats.total_s / stats.count}
                for cls, stats in sorted(self._modules.items(),
                                         key=lambda kv: -kv[1].total_s)
            },
        }

    def table(self, limit: int = 20) -> str:
        """Format the top-``limit`` ops by backward time as a text table."""
        lines = [f"{'op':<14}{'fwd count':>10}{'out MiB':>10}"
                 f"{'bwd count':>10}{'bwd ms':>10}"]
        empty = _TimeStats()
        ranked = sorted(
            self._ops,
            key=lambda op: -self._backward.get(op, empty).total_s,
        )
        for op in ranked[:limit]:
            fwd = self._ops[op]
            bwd = self._backward.get(op, empty)
            lines.append(
                f"{op:<14}{fwd.count:>10}"
                f"{fwd.output_bytes / 2**20:>10.2f}"
                f"{bwd.count:>10}{bwd.total_s * 1e3:>10.2f}"
            )
        if self._modules:
            lines.append("")
            lines.append(f"{'module':<20}{'calls':>10}{'fwd ms':>10}")
            for cls, stats in sorted(self._modules.items(),
                                     key=lambda kv: -kv[1].total_s)[:limit]:
                lines.append(f"{cls:<20}{stats.count:>10}"
                             f"{stats.total_s * 1e3:>10.2f}")
        return "\n".join(lines)
