"""Op-level autograd profiler for the ``repro.nn`` engine.

:class:`OpProfiler` hooks the three dispatch points of the nn stack:

* **op construction** (``Tensor._make``) — counts every autograd op and
  the bytes/elements of its output tensor (the forward fan-out);
* **backward dispatch** (``_dispatch_backward``) — wall time of each
  op's backward closure, aggregated per op type (the autograd hot path);
* **module forward** (``Module.__call__``) — wall time per module class
  (``Conv3d``, ``BatchNorm3d``, …).  Container modules include their
  children's time, so read this column hierarchically.

The hooks are plain module-level callables checked against ``None`` on
the hot path, so an un-profiled run pays one global read per op.  The
profiler nests: entering saves whatever hooks were installed and chains
to them, so an outer profiler keeps aggregating through an inner one.

Usage::

    from repro.obs import OpProfiler

    with OpProfiler() as prof:
        loss = model(batch).sum()
        loss.backward()
    print(prof.table())
"""

from __future__ import annotations


def _nn():
    # Imported lazily: repro.obs is a leaf dependency of the whole stack
    # (even repro.utils.timing pulls in repro.obs.tracing), so importing
    # repro.nn at module level would create an import cycle.
    from repro.nn import modules, tensor

    return modules, tensor


class OpProfiler:
    """Aggregate per-op-type forward counts/sizes and backward times."""

    def __init__(self, profile_modules: bool = True) -> None:
        self.profile_modules = bool(profile_modules)
        self._saved_autograd = (None, None)
        self._saved_call = None
        self.reset()

    def reset(self) -> None:
        """Drop all aggregated statistics."""
        #: op → {count, output_bytes, output_elems}
        self.ops: dict[str, dict[str, int]] = {}
        #: op → {count, total_s}
        self.backward: dict[str, dict[str, float]] = {}
        #: module class name → {count, total_s}
        self.modules: dict[str, dict[str, float]] = {}

    # -------------------------------------------------------------- #
    # Hook bodies
    # -------------------------------------------------------------- #
    def _on_make(self, op: str, data) -> None:
        entry = self.ops.get(op)
        if entry is None:
            entry = self.ops[op] = {
                "count": 0, "output_bytes": 0, "output_elems": 0}
        entry["count"] += 1
        entry["output_bytes"] += data.nbytes
        entry["output_elems"] += data.size
        chained = self._saved_autograd[0]
        if chained is not None:
            chained(op, data)

    def _on_backward(self, op: str, seconds: float) -> None:
        entry = self.backward.get(op)
        if entry is None:
            entry = self.backward[op] = {"count": 0, "total_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += seconds
        chained = self._saved_autograd[1]
        if chained is not None:
            chained(op, seconds)

    def _on_module(self, module_type: str, seconds: float) -> None:
        entry = self.modules.get(module_type)
        if entry is None:
            entry = self.modules[module_type] = {"count": 0, "total_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += seconds
        if self._saved_call is not None:
            self._saved_call(module_type, seconds)

    # -------------------------------------------------------------- #
    # Context manager protocol
    # -------------------------------------------------------------- #
    def __enter__(self) -> "OpProfiler":
        modules, tensor = _nn()
        self._saved_autograd = tensor.get_autograd_hooks()
        tensor.set_autograd_hooks(self._on_make, self._on_backward)
        if self.profile_modules:
            self._saved_call = modules.get_call_hook()
            modules.set_call_hook(self._on_module)
        return self

    def __exit__(self, *exc: object) -> None:
        modules, tensor = _nn()
        tensor.set_autograd_hooks(*self._saved_autograd)
        self._saved_autograd = (None, None)
        if self.profile_modules:
            modules.set_call_hook(self._saved_call)
            self._saved_call = None

    # -------------------------------------------------------------- #
    # Reporting
    # -------------------------------------------------------------- #
    def summary(self) -> dict:
        """Return a JSON-able ``{ops, backward, modules}`` report."""
        return {
            "ops": {op: dict(stats) for op, stats in sorted(self.ops.items())},
            "backward": {
                op: {**stats,
                     "mean_s": stats["total_s"] / stats["count"]}
                for op, stats in sorted(self.backward.items(),
                                        key=lambda kv: -kv[1]["total_s"])
            },
            "modules": {
                cls: {**stats,
                      "mean_s": stats["total_s"] / stats["count"]}
                for cls, stats in sorted(self.modules.items(),
                                         key=lambda kv: -kv[1]["total_s"])
            },
        }

    def table(self, limit: int = 20) -> str:
        """Format the top-``limit`` ops by backward time as a text table."""
        lines = [f"{'op':<14}{'fwd count':>10}{'out MiB':>10}"
                 f"{'bwd count':>10}{'bwd ms':>10}"]
        ranked = sorted(
            self.ops,
            key=lambda op: -self.backward.get(op, {}).get("total_s", 0.0),
        )
        for op in ranked[:limit]:
            fwd = self.ops[op]
            bwd = self.backward.get(op, {"count": 0, "total_s": 0.0})
            lines.append(
                f"{op:<14}{fwd['count']:>10}"
                f"{fwd['output_bytes'] / 2**20:>10.2f}"
                f"{bwd['count']:>10}{bwd['total_s'] * 1e3:>10.2f}"
            )
        if self.modules:
            lines.append("")
            lines.append(f"{'module':<20}{'calls':>10}{'fwd ms':>10}")
            for cls, stats in sorted(self.modules.items(),
                                     key=lambda kv: -kv[1]["total_s"])[:limit]:
                lines.append(f"{cls:<20}{stats['count']:>10}"
                             f"{stats['total_s'] * 1e3:>10.2f}")
        return "\n".join(lines)
