"""Writers for observability artifacts under ``results/obs/``.

Two formats cover the two consumption modes:

* :func:`write_metrics_json` — a flat JSON report (metrics snapshot +
  span aggregates + optional extras), the sidecar every ``run_all``
  experiment emits next to its table.
* :func:`write_chrome_trace` — a Chrome-trace-format event file; open it
  at ``chrome://tracing`` (or https://ui.perfetto.dev) to see the span
  tree on a timeline.

Both accept either an absolute path or a bare name, which is resolved
under ``REPRO_OBS_DIR`` (default ``results/obs``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import Tracer, get_tracer


def obs_dir() -> Path:
    """Output directory for observability artifacts (env-overridable)."""
    return Path(os.environ.get("REPRO_OBS_DIR", os.path.join("results", "obs")))


def _resolve(path_or_name: str | Path, suffix: str) -> Path:
    path = Path(path_or_name)
    if path.suffix != ".json":
        path = obs_dir() / f"{path.name}{suffix}"
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def metrics_report(registry: MetricsRegistry | None = None,
                   tracer: Tracer | None = None,
                   extra: dict | None = None) -> dict:
    """Build the flat JSON report without writing it."""
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    report = {
        "generated_unix": time.time(),
        "metrics": registry.snapshot(),
        "spans": tracer.aggregate(),
        "dropped_span_records": tracer.dropped_records,
    }
    if extra:
        report["extra"] = extra
    return report


def write_metrics_json(path_or_name: str | Path,
                       registry: MetricsRegistry | None = None,
                       tracer: Tracer | None = None,
                       extra: dict | None = None) -> Path:
    """Write the flat metrics report; returns the resolved path."""
    path = _resolve(path_or_name, ".metrics.json")
    report = metrics_report(registry=registry, tracer=tracer, extra=extra)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def write_chrome_trace(path_or_name: str | Path,
                       tracer: Tracer | None = None) -> Path:
    """Write the span tree as a ``chrome://tracing`` event file."""
    tracer = tracer if tracer is not None else get_tracer()
    path = _resolve(path_or_name, ".trace.json")
    document = {
        "traceEvents": tracer.events(),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs",
                      "dropped_records": tracer.dropped_records},
    }
    path.write_text(json.dumps(document) + "\n")
    return path
