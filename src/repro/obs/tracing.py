"""Nestable wall-clock spans with a no-op fast path.

A *span* measures one region of work.  Spans nest: entering a span while
another is open records the new one as a child, so a DUO run yields a
tree like ``attack.duo → attack.duo.transfer → transfer.theta_step``.
The tracer keeps three views of the same data:

* a **tree** of span records (parent/child structure, for Chrome traces),
* an **aggregate** table ``name → {count, total_s, mean_s}`` (for the
  flat JSON report), and
* a bounded record count so pathological loops cannot exhaust memory
  (over-budget spans still aggregate, only the tree entry is dropped).

Tracing is ON by default and disabled with ``REPRO_TRACE=0``; the
environment variable is re-read on every span entry (cheap — one dict
lookup) so tests and benchmarks can flip it at runtime.  When disabled,
:func:`span` returns a shared no-op context manager: the fast path is a
single function call + env check, measured by
``benchmarks/bench_obs_overhead.py``.

Usage::

    from repro.obs import span, traced

    with span("gallery.search", k=10):
        ...

    @traced("attack.duo.transfer")
    def run(...):
        ...
"""

from __future__ import annotations

import functools
import os
import threading
import time

TRACE_ENV = "REPRO_TRACE"

#: Tri-state programmatic override: None → follow the environment.
_OVERRIDE: bool | None = None

#: Cap on stored span records (tree nodes); aggregates are unbounded.
MAX_RECORDS = 200_000


#: ``(raw env value, parsed bool)`` memo — parsing is skipped while the
#: raw value is unchanged, but the env itself is still read every call
#: so runtime flips keep taking effect (and garbage keeps raising).
_ENV_MEMO: tuple[str | None, bool] | None = None


def tracing_enabled() -> bool:
    """Return whether spans currently record (env re-read each call)."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    global _ENV_MEMO
    raw = os.environ.get(TRACE_ENV)
    memo = _ENV_MEMO
    if memo is not None and memo[0] == raw:
        return memo[1]
    from repro.utils.envflags import env_bool

    value = env_bool(TRACE_ENV, True)
    _ENV_MEMO = (raw, value)
    return value


def enable_tracing() -> None:
    """Force tracing on, ignoring ``REPRO_TRACE``."""
    global _OVERRIDE
    _OVERRIDE = True


def disable_tracing() -> None:
    """Force tracing off, ignoring ``REPRO_TRACE``."""
    global _OVERRIDE
    _OVERRIDE = False


def use_env_tracing() -> None:
    """Drop any programmatic override; follow ``REPRO_TRACE`` again."""
    global _OVERRIDE
    _OVERRIDE = None


class Tracer:
    """Span collector: record tree + per-name aggregates.

    The span stack belongs to the thread that last :meth:`reset` the
    tracer (normally the main thread).  Spans opened on *other* threads
    — e.g. serving worker-pool compute — are recorded *detached*: they
    aggregate and appear as extra roots in the tree, but never touch
    the owner's stack, so concurrent workers cannot corrupt nesting.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Drop all recorded spans and restart the trace clock."""
        self._stack: list[dict] = []
        self.roots: list[dict] = []
        self.aggregates: dict[str, list[float]] = {}
        self.num_records = 0
        self.dropped_records = 0
        self._epoch = time.perf_counter()
        self._owner = threading.get_ident()

    # -------------------------------------------------------------- #
    # Recording (driven by _SpanContext)
    # -------------------------------------------------------------- #
    def _open(self, name: str, attrs: dict) -> dict:
        record = {
            "name": name,
            "ts_us": (time.perf_counter() - self._epoch) * 1e6,
            "dur_us": 0.0,
            "args": attrs,
            "children": [],
        }
        if threading.get_ident() == self._owner:
            self._stack.append(record)
        else:
            record["_detached"] = True
        return record

    def _close(self, record: dict, duration: float) -> None:
        record["dur_us"] = duration * 1e6
        if record.pop("_detached", False):
            # Worker-thread span: aggregate and file as a root without
            # touching the owner thread's stack.
            entry = self.aggregates.setdefault(record["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += duration
            if self.num_records >= MAX_RECORDS:
                self.dropped_records += 1
                return
            self.num_records += 1
            self.roots.append(record)
            return
        # Tolerate interleaved/forgotten exits: pop back to this record.
        while self._stack and self._stack[-1] is not record:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

        entry = self.aggregates.setdefault(record["name"], [0, 0.0])
        entry[0] += 1
        entry[1] += duration

        if self.num_records >= MAX_RECORDS:
            self.dropped_records += 1
            return
        self.num_records += 1
        if self._stack:
            self._stack[-1]["children"].append(record)
        else:
            self.roots.append(record)

    # -------------------------------------------------------------- #
    # Views
    # -------------------------------------------------------------- #
    @property
    def depth(self) -> int:
        """Number of currently-open spans."""
        return len(self._stack)

    def current_span_name(self) -> str | None:
        """Name of the innermost open span (None outside any span)."""
        return self._stack[-1]["name"] if self._stack else None

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Return ``name → {count, total_s, mean_s}`` sorted by total."""
        table = {}
        for name, (count, total) in sorted(
                self.aggregates.items(), key=lambda kv: -kv[1][1]):
            table[name] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
        return table

    def events(self) -> list[dict]:
        """Flatten the record tree to Chrome-trace "complete" events."""
        flat: list[dict] = []
        stack = list(self.roots)
        while stack:
            record = stack.pop()
            flat.append({
                "name": record["name"],
                "ph": "X",
                "ts": record["ts_us"],
                "dur": record["dur_us"],
                "pid": os.getpid(),
                "tid": 0,
                "args": {k: str(v) for k, v in record["args"].items()},
            })
            stack.extend(record["children"])
        flat.sort(key=lambda event: event["ts"])
        return flat


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """Return the process-wide default tracer."""
    return _TRACER


class _SpanContext:
    """Live span handle; exposes ``duration`` after exit."""

    __slots__ = ("name", "attrs", "_start", "_record", "duration")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._record: dict | None = None
        self.duration = 0.0

    def __enter__(self) -> "_SpanContext":
        self._record = _TRACER._open(self.name, self.attrs)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.perf_counter() - self._start
        if self._record is not None:
            _TRACER._close(self._record, self.duration)
            self._record = None


class _NoopSpan:
    """Shared do-nothing span (tracing disabled)."""

    __slots__ = ()
    name = ""
    duration = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attrs) -> _SpanContext | _NoopSpan:
    """Open a span named ``name`` (context manager).

    With tracing disabled this returns a shared no-op object — the
    instrumented call sites pay only this function call.
    """
    if not tracing_enabled():
        return _NOOP
    return _SpanContext(name, attrs)


def traced(name: str | None = None, **attrs):
    """Decorator form of :func:`span`.

    ``name`` defaults to ``module.qualname`` of the wrapped function; the
    enabled check happens per *call*, so flipping ``REPRO_TRACE`` at
    runtime affects already-decorated functions.
    """

    def decorate(func):
        span_name = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate
