"""Fault injection and recovery for the distributed retrieval plane.

The paper's victim (Fig. 1) is a distributed system — gallery videos
live on many data nodes — and query-heavy attacks (SparseQuery, HEU,
QAIR-style loops) stress it with thousands of sequential queries.  This
package makes that plane production-shaped:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultPlan` that scripts node outages, flakiness, slowness, and
  score corruption, installed via a context manager;
* :mod:`repro.resilience.retry` — per-node retry with exponential
  backoff and deterministic jitter;
* :mod:`repro.resilience.breaker` — per-node circuit breakers
  (closed/open/half-open with cooldown);
* :mod:`repro.resilience.checkpoint` — checkpoint/resume for attack
  loops so a mid-run ``RetrievalUnavailable`` is survivable and the
  resumed trace is bit-identical;
* :mod:`repro.resilience.config` — the frozen config dataclasses that
  the redesigned retrieval API (``RetrievalService.build``,
  ``RetrievalEngine(resilience=...)``) accepts.

Replication and quorum-aware merging live in
:mod:`repro.retrieval.nodes` (they are placement concerns), configured
through :class:`ResilienceConfig.replication`.
"""

from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.resilience.checkpoint import (
    AttackCheckpoint,
    CheckpointSession,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.config import BreakerPolicy, ResilienceConfig, RetryPolicy
from repro.resilience.faults import ANY_NODE, FaultEvent, FaultPlan, NodeFaultSpec
from repro.resilience.retry import RetryExecutor

__all__ = [
    "ANY_NODE",
    "AttackCheckpoint",
    "BreakerPolicy",
    "CLOSED",
    "CheckpointSession",
    "CircuitBreaker",
    "FaultEvent",
    "FaultPlan",
    "HALF_OPEN",
    "NodeFaultSpec",
    "OPEN",
    "ResilienceConfig",
    "RetryExecutor",
    "RetryPolicy",
    "load_checkpoint",
    "save_checkpoint",
]
