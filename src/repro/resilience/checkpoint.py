"""Checkpoint/resume for long black-box attack loops.

QAIR-style query-efficient attacks and the paper's SparseQuery issue
thousands of *sequential* queries; a single mid-run
:class:`~repro.errors.RetrievalUnavailable` used to throw the whole run
away.  A :class:`CheckpointSession` makes the loops durable:

* at the top of every iteration the loop calls :meth:`mark` — a cheap
  in-memory capture of the loop state *before* any rng is consumed;
* when an evaluation raises ``RetrievalUnavailable`` the loop calls
  :meth:`persist`, which writes the marked state (rng bit-generator
  state, perturbation, trace, cursor, and the service/objective query
  accounting) to disk and lets the error propagate;
* a later call with the same ``checkpoint_path`` resumes from the mark
  and replays the interrupted iteration from its start.

Resume is **bit-identical**: the rng stream, the trace, the accepted
perturbations, and the final query accounting all match an uninterrupted
run.  The partially-executed iteration's evaluations are rolled back on
the service/objective side (the marked counts are restored), so nothing
is double-counted.  Process-global obs counters are monotonic by design
and are *not* rolled back.
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs import counter

#: On-disk format version (bump on incompatible payload changes).
CHECKPOINT_VERSION = 1


@dataclass
class AttackCheckpoint:
    """Everything needed to resume an attack loop bit-identically."""

    algo: str
    iteration: int
    rng_state: dict
    service_query_count: int | None
    objective_queries: int | None
    objective_trace_len: int | None
    payload: dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION
    #: Full service ledger at the mark.  Restoring only ``query_count``
    #: would leave the interrupted iteration's issued-but-unsettled
    #: queries dangling, breaking ``issued == charged + refunded``.
    service_queries_issued: int | None = None
    service_queries_refunded: int | None = None


def _copy_value(value):
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return list(value)
    return value


def save_checkpoint(path: str | Path, checkpoint: AttackCheckpoint) -> None:
    """Atomically write ``checkpoint`` to ``path`` (tmp file + rename)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise
    counter("resilience.checkpoint_saves").inc()


def load_checkpoint(path: str | Path) -> AttackCheckpoint | None:
    """Read a checkpoint, or ``None`` when the file does not exist."""
    path = Path(path)
    if not path.exists():
        return None
    with path.open("rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, AttackCheckpoint):
        raise ValueError(f"{path} is not an attack checkpoint")
    if checkpoint.version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {checkpoint.version} unsupported "
            f"(expected {CHECKPOINT_VERSION})")
    return checkpoint


class CheckpointSession:
    """Per-run helper binding a loop, its rng, and its objective.

    ``path=None`` disables everything at zero cost: :meth:`mark` and
    :meth:`persist` become no-ops and :meth:`resume` returns ``None``.
    """

    def __init__(self, path: str | Path | None, algo: str, objective,
                 rng: np.random.Generator) -> None:
        self.path = Path(path) if path is not None else None
        self.algo = str(algo)
        self.objective = objective
        self.rng = rng
        self._mark: AttackCheckpoint | None = None

    @property
    def enabled(self) -> bool:
        return self.path is not None

    # -------------------------------------------------------------- #
    # Accounting helpers
    # -------------------------------------------------------------- #
    def _service(self):
        return getattr(self.objective, "service", None)

    def _counts(self) -> tuple[int | None, int | None, int | None]:
        service = self._service()
        return (
            getattr(service, "query_count", None),
            getattr(self.objective, "queries", None),
            len(self.objective.trace)
            if getattr(self.objective, "trace", None) is not None else None,
        )

    def _restore_counts(self, checkpoint: AttackCheckpoint) -> None:
        service = self._service()
        if service is not None and checkpoint.service_query_count is not None:
            service.query_count = checkpoint.service_query_count
            issued = getattr(checkpoint, "service_queries_issued", None)
            if issued is not None and hasattr(service, "queries_issued"):
                service.queries_issued = issued
            refunded = getattr(checkpoint, "service_queries_refunded", None)
            if refunded is not None and \
                    hasattr(service, "queries_refunded"):
                service.queries_refunded = refunded
        if checkpoint.objective_queries is not None:
            self.objective.queries = checkpoint.objective_queries
        if checkpoint.objective_trace_len is not None:
            del self.objective.trace[checkpoint.objective_trace_len:]

    # -------------------------------------------------------------- #
    # Loop protocol
    # -------------------------------------------------------------- #
    def resume(self) -> dict | None:
        """Restore a saved state, or ``None`` for a fresh start.

        Rewinds the rng to the marked state and rolls the service /
        objective accounting back to the mark, undoing any evaluations
        of the interrupted iteration.
        """
        if not self.enabled:
            return None
        checkpoint = load_checkpoint(self.path)
        if checkpoint is None:
            return None
        if checkpoint.algo != self.algo:
            raise ValueError(
                f"checkpoint at {self.path} was written by "
                f"{checkpoint.algo!r}, not {self.algo!r}")
        self.rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
        self._restore_counts(checkpoint)
        counter("resilience.checkpoint_restores").inc()
        return {"iteration": checkpoint.iteration, **checkpoint.payload}

    def mark(self, iteration: int, **payload) -> None:
        """Capture loop state at the top of ``iteration`` (pre-rng).

        Mutable payload values (arrays, lists) are copied so later loop
        mutation cannot corrupt the mark.
        """
        if not self.enabled:
            return
        service_count, objective_queries, trace_len = self._counts()
        service = self._service()
        self._mark = AttackCheckpoint(
            algo=self.algo,
            iteration=int(iteration),
            rng_state=copy.deepcopy(self.rng.bit_generator.state),
            service_query_count=service_count,
            objective_queries=objective_queries,
            objective_trace_len=trace_len,
            payload={key: _copy_value(value)
                     for key, value in payload.items()},
            service_queries_issued=getattr(service, "queries_issued", None),
            service_queries_refunded=getattr(service, "queries_refunded",
                                             None),
        )

    def persist(self) -> None:
        """Write the latest mark to disk (called on RetrievalUnavailable)."""
        if not self.enabled or self._mark is None:
            return
        save_checkpoint(self.path, self._mark)

    def complete(self) -> None:
        """Delete the checkpoint after a successful run."""
        if self.enabled and self.path.exists():
            self.path.unlink()


__all__ = [
    "AttackCheckpoint",
    "CheckpointSession",
    "load_checkpoint",
    "save_checkpoint",
    "CHECKPOINT_VERSION",
]
