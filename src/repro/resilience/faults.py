"""Deterministic, scriptable fault injection for the retrieval plane.

A :class:`FaultPlan` describes *when and how* data nodes misbehave:

* **flaky** — each attempt against the node fails with probability ``p``
  (:class:`~repro.errors.NodeDownError`), so retries can succeed;
* **slow** — attempts carry injected latency, which the coordinator
  checks against its per-query deadline / hedge threshold;
* **corrupt** — the node's similarity scores are perturbed with seeded
  Gaussian noise (what quorum merging is for);
* **outage** — the node hard-fails for a window of logical query
  indexes ``[start, end)``, then recovers.

Everything is driven by generators seeded from ``(seed, node_id)`` and a
logical query clock the coordinator advances, so the same plan replayed
against the same workload produces the *same outage timeline* — tests
and benchmarks can script incidents and assert exact recovery.

Installation is a context manager::

    plan = FaultPlan(seed=7).flaky("node-1", 0.3).outage("node-0", 50, 80)
    with plan.install(engine.gallery):
        run_attack(...)          # faults active
    # gallery back to healthy

Injected latency is *virtual* by default: it is accounted against
deadlines and hedge thresholds without sleeping, keeping fault-injected
test suites fast and bit-deterministic.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.errors import NodeDownError
from repro.obs import counter
from repro.retrieval.lists import RetrievalEntry

#: Wildcard node id applying a fault spec to every node.
ANY_NODE = "*"


@dataclass
class NodeFaultSpec:
    """Fault parameters for one node (or the ``"*"`` wildcard)."""

    flaky_p: float = 0.0
    latency_s: float = 0.0
    latency_jitter_s: float = 0.0
    corrupt_sigma: float = 0.0
    outages: list[tuple[int, int]] = field(default_factory=list)


@dataclass(frozen=True)
class FaultEvent:
    """One recorded injection decision (the determinism tests diff these)."""

    query: int
    node_id: str
    kind: str  # "outage" | "flaky" | "latency" | "corrupt"
    value: float = 0.0


class FaultPlan:
    """A seeded, replayable schedule of node faults."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.specs: dict[str, NodeFaultSpec] = {}
        self.reset()

    # -------------------------------------------------------------- #
    # Builders (chainable)
    # -------------------------------------------------------------- #
    def _spec(self, node_id: str) -> NodeFaultSpec:
        return self.specs.setdefault(str(node_id), NodeFaultSpec())

    def flaky(self, node_id: str, probability: float) -> "FaultPlan":
        """Each attempt against ``node_id`` fails with ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self._spec(node_id).flaky_p = float(probability)
        return self

    def slow(self, node_id: str, latency_s: float,
             jitter_s: float = 0.0) -> "FaultPlan":
        """Attempts against ``node_id`` carry injected (virtual) latency."""
        if latency_s < 0 or jitter_s < 0:
            raise ValueError("latency must be non-negative")
        spec = self._spec(node_id)
        spec.latency_s = float(latency_s)
        spec.latency_jitter_s = float(jitter_s)
        return self

    def corrupt(self, node_id: str, sigma: float) -> "FaultPlan":
        """Perturb ``node_id``'s similarity scores with N(0, sigma)."""
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self._spec(node_id).corrupt_sigma = float(sigma)
        return self

    def outage(self, node_id: str, start: int, end: int) -> "FaultPlan":
        """Hard-fail ``node_id`` for logical queries ``[start, end)``."""
        if end <= start:
            raise ValueError("outage window must be non-empty")
        self._spec(node_id).outages.append((int(start), int(end)))
        return self

    # -------------------------------------------------------------- #
    # Replay state
    # -------------------------------------------------------------- #
    def reset(self) -> None:
        """Rewind the query clock and all rng streams (exact replay)."""
        self.query_index = 0
        self._span = (0, 0)
        self.events: list[FaultEvent] = []
        self._rngs: dict[str, np.random.Generator] = {}

    def _rng(self, node_id: str) -> np.random.Generator:
        rng = self._rngs.get(node_id)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed,
                                        *(ord(c) for c in node_id)]))
            self._rngs[node_id] = rng
        return rng

    def _specs_for(self, node_id: str):
        for key in (node_id, ANY_NODE):
            spec = self.specs.get(key)
            if spec is not None:
                yield spec

    # -------------------------------------------------------------- #
    # Runtime protocol (called by the gallery / nodes)
    # -------------------------------------------------------------- #
    def advance(self, count: int = 1) -> int:
        """Advance the logical query clock by ``count`` queries."""
        start = self.query_index
        self.query_index += int(count)
        self._span = (start, self.query_index)
        return start

    def on_attempt(self, node_id: str) -> float:
        """One attempt against ``node_id``; may raise, returns latency.

        Raises :class:`~repro.errors.NodeDownError` when the node is in
        an outage window or a flaky draw fails; otherwise returns the
        injected (virtual) latency in seconds for this attempt.
        """
        start, end = self._span
        latency = 0.0
        for spec in self._specs_for(node_id):
            for lo, hi in spec.outages:
                if lo < end and start < hi:
                    self.events.append(FaultEvent(start, node_id, "outage"))
                    counter("faults.outage_hits", node=node_id).inc()
                    raise NodeDownError(
                        f"node {node_id} in scheduled outage "
                        f"[{lo}, {hi}) at query {start}")
            if spec.flaky_p > 0.0:
                draw = float(self._rng(node_id).random())
                if draw < spec.flaky_p:
                    self.events.append(
                        FaultEvent(start, node_id, "flaky", draw))
                    counter("faults.flaky_failures", node=node_id).inc()
                    raise NodeDownError(
                        f"node {node_id} flaked at query {start}")
            if spec.latency_s > 0.0 or spec.latency_jitter_s > 0.0:
                jitter = spec.latency_jitter_s * float(
                    self._rng(node_id).random())
                latency += spec.latency_s + jitter
        if latency > 0.0:
            self.events.append(FaultEvent(start, node_id, "latency", latency))
            counter("faults.injected_latency", node=node_id).inc()
        return latency

    def transform(self, node_id: str,
                  entries: list[RetrievalEntry]) -> list[RetrievalEntry]:
        """Apply score corruption to one node's local result list."""
        sigma = 0.0
        for spec in self._specs_for(node_id):
            sigma += spec.corrupt_sigma
        if sigma <= 0.0 or not entries:
            return entries
        noise = self._rng(node_id).normal(0.0, sigma, size=len(entries))
        self.events.append(
            FaultEvent(self._span[0], node_id, "corrupt", sigma))
        counter("faults.corrupted_results", node=node_id).inc()
        return [
            RetrievalEntry(e.video_id, e.label, e.score + float(n))
            for e, n in zip(entries, noise)
        ]

    def timeline(self) -> list[tuple[int, str, str]]:
        """Compact ``(query, node, kind)`` view of the recorded events."""
        return [(e.query, e.node_id, e.kind) for e in self.events]

    # -------------------------------------------------------------- #
    # Installation
    # -------------------------------------------------------------- #
    @contextmanager
    def install(self, gallery):
        """Attach this plan to every node of ``gallery`` for the block.

        Restores whatever injectors were previously installed (usually
        none) on exit, even when the block raises.
        """
        previous_plan = getattr(gallery, "fault_plan", None)
        previous = [node.fault_injector for node in gallery.nodes]
        gallery.fault_plan = self
        for node in gallery.nodes:
            node.fault_injector = self
        try:
            yield self
        finally:
            gallery.fault_plan = previous_plan
            for node, injector in zip(gallery.nodes, previous):
                node.fault_injector = injector


__all__ = ["FaultPlan", "FaultEvent", "NodeFaultSpec", "ANY_NODE"]
