"""Deterministic per-node retry with exponential backoff + jitter.

Only *transient* retrieval faults are retried: :class:`NodeDownError`
(flaky node, outage window) and :class:`DeadlineExceeded` (slow attempt;
the next attempt draws a fresh latency).  Budget errors and breaker
short-circuits propagate immediately.

Jitter is drawn from a generator seeded by ``(policy.seed, node_id)``,
so a given configuration always produces the same backoff timeline —
the property the fault-plan determinism tests assert end to end.
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

from repro.errors import DeadlineExceeded, NodeDownError
from repro.obs import counter, histogram
from repro.resilience.config import RetryPolicy
from repro.utils.seeding import SeedSequence

T = TypeVar("T")

#: Exceptions worth another attempt.
RETRYABLE = (NodeDownError, DeadlineExceeded)

#: Backoff delays are milliseconds-flavoured at simulation scale.
BACKOFF_BUCKETS = (1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0)


class RetryExecutor:
    """Runs node calls under a :class:`RetryPolicy`.

    One executor per node: the jitter stream is part of the node's
    deterministic identity, and per-node retry counters label cleanly.
    """

    def __init__(self, policy: RetryPolicy | None = None, node_id: str = "",
                 sleep: Callable[[float], None] | None = None) -> None:
        self.policy = policy or RetryPolicy()
        self.node_id = str(node_id)
        self.sleep = sleep if sleep is not None else time.sleep
        self._rng = SeedSequence(self.policy.seed).rng("retry", self.node_id)
        #: Total simulated+real seconds spent backing off (introspection).
        self.backoff_spent_s = 0.0

    def backoff_s(self, attempt: int) -> float:
        """Backoff before 1-indexed ``attempt`` (0.0 for the first)."""
        if attempt <= 1:
            return 0.0
        base = min(self.policy.backoff_max_s,
                   self.policy.backoff_base_s * 2.0 ** (attempt - 2))
        return base * (1.0 + self.policy.jitter * float(self._rng.random()))

    def run(self, fn: Callable[[], T]) -> T:
        """Call ``fn`` up to ``max_attempts`` times; re-raise the last error.

        The first attempt is a bare call — the backoff/bookkeeping loop
        is only entered after a transient failure, keeping the fault-free
        fast path at near-zero overhead.
        """
        try:
            return fn()
        except RETRYABLE as exc:
            return self._resume(fn, exc)

    def _resume(self, fn: Callable[[], T], first_error: Exception) -> T:
        """Attempts ``2..max_attempts`` after a failed first attempt."""
        last = first_error
        for attempt in range(2, self.policy.max_attempts + 1):
            counter("resilience.retries", node=self.node_id).inc()
            delay = self.backoff_s(attempt)
            if delay > 0.0:
                histogram("resilience.retry_backoff_s",
                          buckets=BACKOFF_BUCKETS,
                          node=self.node_id).observe(delay)
                self.backoff_spent_s += delay
                self.sleep(delay)
            try:
                result = fn()
            except RETRYABLE as exc:
                last = exc
                continue
            counter("resilience.retry_successes", node=self.node_id).inc()
            return result
        raise last


__all__ = ["RetryExecutor", "RETRYABLE", "BACKOFF_BUCKETS"]
