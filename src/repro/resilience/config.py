"""Configuration dataclasses for the resilient retrieval plane.

These are half of the PR's API redesign: instead of threading a growing
pile of kwargs through ``RetrievalEngine`` → ``ShardedGallery`` →
``DataNode``, callers build one frozen :class:`ResilienceConfig` (with
nested :class:`RetryPolicy` / :class:`BreakerPolicy`) and hand it to
``RetrievalEngine(..., resilience=cfg)`` or
``RetrievalService.build(..., resilience=cfg)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class RetryPolicy:
    """Per-node retry with exponential backoff and deterministic jitter.

    Backoff before attempt ``a`` (1-indexed; the first attempt never
    waits) is ``min(backoff_max_s, backoff_base_s * 2**(a-2))`` scaled by
    ``1 + jitter * u`` with ``u ~ U[0, 1)`` drawn from a generator seeded
    by ``(seed, node_id)`` — the same seed always produces the same
    backoff timeline, which the determinism tests rely on.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.001
    backoff_max_s: float = 0.05
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be non-negative")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit-breaker thresholds (closed → open → half-open → closed).

    ``failure_threshold`` consecutive failures open the breaker; after
    ``cooldown_s`` on the breaker's clock it admits one half-open probe,
    closing on success and re-opening on failure.
    """

    failure_threshold: int = 5
    cooldown_s: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the retrieval plane needs to degrade gracefully.

    Parameters
    ----------
    replication:
        Number of nodes each gallery row is stored on (consecutive
        round-robin placement).  With ``r`` replicas, retrieval stays
        *exact* while at least one replica of every shard is live.
    retry:
        Per-node retry policy; ``None`` disables retries.
    breaker:
        Per-node circuit breaker policy; ``None`` disables breakers.
    deadline_s:
        Per-query, per-node deadline.  A node attempt whose (real +
        fault-injected) latency exceeds it fails with
        :class:`~repro.errors.DeadlineExceeded` and is retried.
    hedge_after_s:
        Hedged-read threshold.  A node slower than this is dropped from
        the merge whenever its shards are fully covered by faster live
        replicas (a "hedge win"); kept otherwise.  ``None`` disables
        hedging.
    on_data_loss:
        What to do when some shard has **no** live replica: ``"raise"``
        (default) raises :class:`~repro.errors.RetrievalUnavailable` so
        attack loops can checkpoint and resume; ``"degrade"`` serves the
        partial merge (the pre-resilience behaviour).
    """

    replication: int = 1
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy | None = field(default_factory=BreakerPolicy)
    deadline_s: float | None = None
    hedge_after_s: float | None = None
    on_data_loss: str = "raise"

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be positive")
        if self.on_data_loss not in ("raise", "degrade"):
            raise ValueError("on_data_loss must be 'raise' or 'degrade'")

    def with_(self, **changes) -> "ResilienceConfig":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        return replace(self, **changes)


__all__ = ["RetryPolicy", "BreakerPolicy", "ResilienceConfig"]
