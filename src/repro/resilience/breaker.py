"""Per-node circuit breaker (closed / open / half-open).

The coordinator keeps one breaker per data node.  While a node fails,
the breaker counts consecutive failures; at the threshold it *opens* and
the coordinator stops sending the node traffic (no retries burned on a
dead node).  After a cooldown the breaker goes *half-open* and admits a
single probe: success closes it, failure re-opens it for another
cooldown.

The clock is injectable so tests (and the fault-injection harness) can
drive state transitions deterministically without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.obs import counter, gauge
from repro.resilience.config import BreakerPolicy

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Numeric encoding for the state gauge (closed=0, half-open=1, open=2).
_STATE_LEVELS = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """One node's breaker state machine."""

    def __init__(self, policy: BreakerPolicy | None = None,
                 node_id: str = "", clock: Callable[[], float] | None = None
                 ) -> None:
        self.policy = policy or BreakerPolicy()
        self.node_id = str(node_id)
        self.clock = clock if clock is not None else time.monotonic
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0

    def _set_state(self, state: str) -> None:
        self.state = state
        gauge("resilience.breaker_state", node=self.node_id).set(
            _STATE_LEVELS[state])

    def allow(self) -> bool:
        """Whether a request may be sent to the node right now.

        An open breaker whose cooldown has elapsed transitions to
        half-open and admits the caller as the probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.policy.cooldown_s:
                self._set_state(HALF_OPEN)
                counter("resilience.breaker_half_opens",
                        node=self.node_id).inc()
                return True
            return False
        # Half-open: one probe is already in flight per coordinator pass;
        # concurrent callers in this single-threaded repro just probe too.
        return True

    def record_success(self) -> None:
        """A request to the node succeeded."""
        self.consecutive_failures = 0
        if self.state != CLOSED:
            self._set_state(CLOSED)
            counter("resilience.breaker_closes", node=self.node_id).inc()

    def record_failure(self) -> None:
        """A request to the node failed (after retries were exhausted)."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._set_state(OPEN)
        self.opened_at = self.clock()
        self.trips += 1
        counter("resilience.breaker_trips", node=self.node_id).inc()

    def reset(self) -> None:
        """Force the breaker back to a fresh closed state."""
        self.consecutive_failures = 0
        self.opened_at = None
        self._set_state(CLOSED)


__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]
