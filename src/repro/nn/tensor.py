"""Reverse-mode automatic differentiation on numpy arrays.

The engine follows the classic dynamic-graph design: every operation on a
:class:`Tensor` records a backward closure and its parents; calling
:meth:`Tensor.backward` topologically sorts the graph and accumulates
gradients.  Broadcasting is fully supported — gradients are summed back to
the source shape by :func:`_unbroadcast`.

Only the features the reproduction needs are implemented, but those are
implemented completely (correct gradients under broadcasting, slicing,
reductions with/without axes, concatenation, stacking, clipping, etc.) and
are covered by gradient-check tests in ``tests/nn``.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Iterable, Sequence

import numpy as np

_GRAD_ENABLED = True

# no_grad() nesting depth across ALL threads.  Serving worker pools run
# concurrent inference forwards; a naive save/restore would let one
# thread's exit re-enable grad mid-forward on another thread.  Grad
# comes back only when every open no_grad() block has exited.
_NO_GRAD_DEPTH = 0
_NO_GRAD_LOCK = threading.Lock()

# Profiling hook points (installed by repro.obs.profiler.OpProfiler).
# ``_MAKE_HOOK(op, data)`` fires on every op-result tensor construction;
# ``_BACKWARD_HOOK(op, seconds)`` fires after each node's backward closure.
# Both default to None so the uninstrumented hot path pays one global read.
_MAKE_HOOK: Callable[[str, np.ndarray], None] | None = None
_BACKWARD_HOOK: Callable[[str, float], None] | None = None


def set_autograd_hooks(
    make_hook: Callable[[str, np.ndarray], None] | None = None,
    backward_hook: Callable[[str, float], None] | None = None,
) -> None:
    """Install (or clear, with None) the op-level profiling hooks."""
    global _MAKE_HOOK, _BACKWARD_HOOK
    _MAKE_HOOK = make_hook
    _BACKWARD_HOOK = backward_hook


def get_autograd_hooks() -> tuple[
    Callable[[str, np.ndarray], None] | None,
    Callable[[str, float], None] | None,
]:
    """Return the currently-installed ``(make_hook, backward_hook)``."""
    return _MAKE_HOOK, _BACKWARD_HOOK


# Trace recorder (installed by repro.nn.jit while capturing a forward).
# While active, every op additionally registers a replay rule with the
# tracer: either a fusible in-place elementwise kernel, an opaque thunk
# recomputing the op's output buffer, or a view annotation.  ``None``
# keeps the uninstrumented hot path at one global read per op, the same
# contract as the profiling hooks above.
_TRACER = None


def set_tracer(tracer) -> None:
    """Install (or clear, with None) the active trace recorder."""
    global _TRACER
    _TRACER = tracer


def get_tracer():
    """Return the active trace recorder (or ``None``)."""
    return _TRACER


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode).

    Depth-counted rather than save/restore so concurrent inference
    threads compose: grad re-enables only when the outermost block (on
    any thread) exits.  The lock is taken once per block, not per op.
    """
    global _GRAD_ENABLED, _NO_GRAD_DEPTH
    with _NO_GRAD_LOCK:
        _NO_GRAD_DEPTH += 1
        _GRAD_ENABLED = False
    try:
        yield
    finally:
        with _NO_GRAD_LOCK:
            _NO_GRAD_DEPTH -= 1
            if _NO_GRAD_DEPTH == 0:
                _GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _array_root(arr: np.ndarray) -> np.ndarray:
    """Follow ``.base`` to the array that owns the memory.

    ``reshape`` on a non-contiguous array returns a view of a fresh
    temporary copy, so ``.base is not None`` alone cannot distinguish
    "aliases the parent" from "copy of the parent" — the roots can.
    """
    while isinstance(arr, np.ndarray) and arr.base is not None:
        arr = arr.base
    return arr


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum leading dimensions added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    arr = np.asarray(value, dtype=dtype)
    if arr.dtype == np.float64 and dtype is None:
        return arr
    return arr


# ---------------------------------------------------------------------- #
# In-place elementwise kernels used by trace replay (repro.nn.jit).
# Each mirrors the numpy expression of its eager op bit-for-bit, and each
# is alias-safe: ``out`` may alias any entry of ``srcs`` (the fusion pass
# relies on this to collapse a chain's intermediates into one buffer).
# ---------------------------------------------------------------------- #
def _ew_add(srcs, out):
    np.add(srcs[0], srcs[1], out=out)


def _ew_sub(srcs, out):
    np.subtract(srcs[0], srcs[1], out=out)


def _ew_mul(srcs, out):
    np.multiply(srcs[0], srcs[1], out=out)


def _ew_div(srcs, out):
    np.divide(srcs[0], srcs[1], out=out)


def _ew_exp(srcs, out):
    np.exp(srcs[0], out=out)


def _ew_log(srcs, out):
    np.log(srcs[0], out=out)


def _ew_sqrt(srcs, out):
    np.sqrt(srcs[0], out=out)


def _ew_abs(srcs, out):
    np.abs(srcs[0], out=out)


def _ew_relu(srcs, out):
    np.maximum(srcs[0], 0.0, out=out)


def _ew_tanh(srcs, out):
    np.tanh(srcs[0], out=out)


def _ew_sigmoid(srcs, out):
    # Staged so that every intermediate lands in ``out``; the sequence is
    # bitwise identical to ``1.0 / (1.0 + np.exp(-x))`` because IEEE-754
    # addition is commutative and each ufunc is evaluated in eager order.
    np.negative(srcs[0], out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``numpy.ndarray``.
    requires_grad:
        Whether gradients should be accumulated into ``self.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op")

    # Make numpy defer binary ops to Tensor's reflected operators instead of
    # trying to broadcast the Tensor as a sequence.
    __array_ufunc__ = None

    def __init__(self, data, requires_grad: bool = False, *, dtype=None) -> None:
        self.data = _as_array(data, dtype=dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.op = "leaf"

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        out.requires_grad = requires
        if requires:
            out._backward = backward
            out._parents = tuple(parents)
            out.op = op
        if _MAKE_HOOK is not None:
            _MAKE_HOOK(op, out.data)
        if _TRACER is not None:
            # Coverage protocol: every op-result must be followed by a
            # record_*/poison call; an op with no replay rule poisons the
            # trace so replay can never silently skip a computation.
            _TRACER.expect(out, op)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so a scalar loss needs no argument).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.broadcast_to(np.asarray(grad, dtype=self.data.dtype), self.shape)

        # Iterative topological sort (post-order DFS).
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
            else:
                _dispatch_backward(node, node_grad, grads)

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data + other.data

        def backward(grad, out=None):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return _binary(self, other, data, backward, "add", ew=_ew_add)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data * other.data

        def backward(grad, out=None):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return _binary(self, other, data, backward, "mul", ew=_ew_mul)

    __rmul__ = __mul__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data - other.data

        def backward(grad, out=None):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other.shape),
            )

        return _binary(self, other, data, backward, "sub", ew=_ew_sub)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data / other.data

        def backward(grad, out=None):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data**2), other.shape),
            )

        return _binary(self, other, data, backward, "div", ew=_ew_div)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return self * (-1.0)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        data = self.data**exponent

        def backward(grad, out=None):
            return (_unbroadcast(grad * exponent * self.data ** (exponent - 1), self.shape),)

        ew = None
        if _TRACER is not None:
            def ew(srcs, out, exponent=exponent):
                np.power(srcs[0], exponent, out=out)
        return _unary(self, data, backward, "pow", ew=ew)

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        data = self.data @ other.data

        def backward(grad, out=None):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                ga = grad * b
                gb = grad * a
            elif a.ndim == 1:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.outer(a, grad) if b.ndim == 2 else a[:, None] * grad[None, :]
            elif b.ndim == 1:
                ga = np.expand_dims(grad, -1) * b
                gb = np.swapaxes(a, -1, -2) @ grad
                gb = _unbroadcast(gb, b.shape)
            else:
                ga = grad @ np.swapaxes(b, -1, -2)
                gb = np.swapaxes(a, -1, -2) @ grad
                ga = _unbroadcast(ga, a.shape)
                gb = _unbroadcast(gb, b.shape)
            return ga, gb

        out = _binary(self, other, data, backward, "matmul")
        if _TRACER is not None:
            a_arr, b_arr, buf = self.data, other.data, out.data
            if buf.ndim >= 2:
                run = lambda: np.matmul(a_arr, b_arr, out=buf)
            else:
                # Vector results: np.matmul's out= contract is awkward for
                # sub-2d outputs, so recompute and copy (rare in models).
                run = lambda: np.copyto(buf, a_arr @ b_arr)
            _TRACER.record(out, (self, other), run, op="matmul")
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad, out=None):
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, self.shape).astype(self.data.dtype, copy=False),)

        out = _unary(self, data, backward, "sum")
        if _TRACER is not None:
            src, buf = self.data, out.data
            _TRACER.record(
                out, (self,),
                lambda: np.sum(src, axis=axis, keepdims=keepdims, out=buf),
                op="sum")
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad, out=None):
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(self.data.dtype)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            elif axis is None and not keepdims:
                g = np.broadcast_to(g, self.shape)
            return (mask * g,)

        out = _unary(self, data, backward, "max")
        if _TRACER is not None:
            src, buf = self.data, out.data
            _TRACER.record(
                out, (self,),
                lambda: np.max(src, axis=axis, keepdims=keepdims, out=buf),
                op="max")
        return out

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad, out=None):
            return (grad.reshape(self.shape),)

        out = _unary(self, data, backward, "reshape")
        if _TRACER is not None:
            if data is self.data or _array_root(data) is _array_root(self.data):
                _TRACER.record_view(out, self)
            else:
                # Non-contiguous source: numpy had to copy.  Replay as a
                # raveling copy into the retained output buffer.
                src = self.data
                dst = out.data.reshape(src.shape)
                _TRACER.record(out, (self,), lambda: np.copyto(dst, src),
                               op="reshape")
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad, out=None):
            return (grad.transpose(inverse),)

        out = _unary(self, data, backward, "transpose")
        if _TRACER is not None:
            _TRACER.record_view(out, self)
        return out

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad, out=None):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        out = _unary(self, data, backward, "getitem")
        if _TRACER is not None:
            if (isinstance(data, np.ndarray)
                    and _array_root(data) is _array_root(self.data)):
                _TRACER.record_view(out, self)
            else:
                # Advanced indexing (or a full-scalar index) copies.
                src, buf = self.data, out.data
                _TRACER.record(out, (self,),
                               lambda: np.copyto(buf, src[index]),
                               op="getitem")
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad, out=None):
            return (np.squeeze(grad, axis=axis),)

        out = _unary(self, data, backward, "expand_dims")
        if _TRACER is not None:
            _TRACER.record_view(out, self)
        return out

    def squeeze(self, axis: int) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)

        def backward(grad, out=None):
            return (np.expand_dims(grad, axis),)

        out = _unary(self, data, backward, "squeeze")
        if _TRACER is not None:
            _TRACER.record_view(out, self)
        return out

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``numpy.pad`` conventions."""
        data = np.pad(self.data, pad_width)

        def backward(grad, out=None):
            slices = tuple(
                slice(before, grad.shape[i] - after)
                for i, (before, after) in enumerate(pad_width)
            )
            return (grad[slices],)

        out = _unary(self, data, backward, "pad")
        if _TRACER is not None:
            # np.pad always copies; the zero borders written at trace time
            # are never touched again, so replay only refreshes the core.
            src = self.data
            core = tuple(slice(before, before + dim)
                         for (before, _after), dim in zip(pad_width, src.shape))
            dst = out.data[core]
            _TRACER.record(out, (self,), lambda: np.copyto(dst, src), op="pad")
        return out

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad, out=None):
            return (grad * data,)

        return _unary(self, data, backward, "exp", ew=_ew_exp)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad, out=None):
            return (grad / self.data,)

        return _unary(self, data, backward, "log", ew=_ew_log)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad, out=None):
            return (grad * 0.5 / np.maximum(data, 1e-12),)

        return _unary(self, data, backward, "sqrt", ew=_ew_sqrt)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad, out=None):
            return (grad * np.sign(self.data),)

        return _unary(self, data, backward, "abs", ew=_ew_abs)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(grad, out=None):
            return (grad * (self.data > 0),)

        return _unary(self, data, backward, "relu", ew=_ew_relu)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad, out=None):
            return (grad * data * (1.0 - data),)

        return _unary(self, data, backward, "sigmoid", ew=_ew_sigmoid)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad, out=None):
            return (grad * (1.0 - data**2),)

        return _unary(self, data, backward, "tanh", ew=_ew_tanh)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        """Clamp values; gradient is passed through inside the interval."""
        data = np.clip(self.data, low, high)

        def backward(grad, out=None):
            mask = np.ones_like(self.data, dtype=bool)
            if low is not None:
                mask &= self.data >= low
            if high is not None:
                mask &= self.data <= high
            return (grad * mask,)

        ew = None
        if _TRACER is not None:
            def ew(srcs, out, low=low, high=high):
                np.clip(srcs[0], low, high, out=out)
        return _unary(self, data, backward, "clip", ew=ew)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad, out=None):
            dot = (grad * data).sum(axis=axis, keepdims=True)
            return (data * (grad - dot),)

        out = _unary(self, data, backward, "softmax")
        if _TRACER is not None:
            src, buf = self.data, out.data

            def run():
                np.subtract(src, src.max(axis=axis, keepdims=True), out=buf)
                np.exp(buf, out=buf)
                buf /= buf.sum(axis=axis, keepdims=True)

            _TRACER.record(out, (self,), run, op="softmax")
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - log_sum
        softmax = np.exp(data)

        def backward(grad, out=None):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        out = _unary(self, data, backward, "log_softmax")
        if _TRACER is not None:
            src, buf, sm = self.data, out.data, softmax

            def run():
                np.subtract(src, src.max(axis=axis, keepdims=True), out=buf)
                np.subtract(
                    buf, np.log(np.exp(buf).sum(axis=axis, keepdims=True)),
                    out=buf)
                # The backward closure captured ``softmax``; refresh it too.
                np.exp(buf, out=sm)

            _TRACER.record(out, (self,), run, op="log_softmax")
        return out

    # ------------------------------------------------------------------ #
    # Norms used throughout the paper
    # ------------------------------------------------------------------ #
    def l2_norm_squared(self) -> "Tensor":
        """Return ``||self||_2^2`` as a scalar tensor."""
        return (self * self).sum()

    def l2_norm(self, eps: float = 1e-12) -> "Tensor":
        """Return ``||self||_2`` as a scalar tensor (safe at zero)."""
        return (self.l2_norm_squared() + eps).sqrt()


# ---------------------------------------------------------------------- #
# Backward dispatch: ops store a closure returning parent grads
# ---------------------------------------------------------------------- #
def _dispatch_backward(node: Tensor, grad: np.ndarray, grads: dict[int, np.ndarray]) -> None:
    if _BACKWARD_HOOK is None:
        parent_grads = node._backward(grad)  # type: ignore[misc]
    else:
        start = time.perf_counter()
        parent_grads = node._backward(grad)  # type: ignore[misc]
        _BACKWARD_HOOK(node.op, time.perf_counter() - start)
    for parent, pgrad in zip(node._parents, parent_grads):
        if pgrad is None or not parent.requires_grad:
            continue
        pgrad = np.asarray(pgrad)
        if parent._backward is None:
            parent._accumulate(pgrad)
        else:
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + pgrad
            else:
                grads[key] = pgrad


def _unary(parent: Tensor, data: np.ndarray, backward, op: str, ew=None) -> Tensor:
    out = Tensor._make(data, (parent,), backward, op)
    if _TRACER is not None and ew is not None:
        _TRACER.record_ew(out, (parent,), ew, op=op)
    return out


def _binary(a: Tensor, b: Tensor, data: np.ndarray, backward, op: str, ew=None) -> Tensor:
    out = Tensor._make(data, (a, b), backward, op)
    if _TRACER is not None and ew is not None:
        _TRACER.record_ew(out, (a, b), ew, op=op)
    return out


def make_op(data: np.ndarray, parents: Sequence[Tensor], backward, op: str) -> Tensor:
    """Public hook for defining fused ops (used by :mod:`repro.nn.functional`)."""
    return Tensor._make(data, parents, backward, op)


# ---------------------------------------------------------------------- #
# Alternative op implementations (performance fast paths)
# ---------------------------------------------------------------------- #
# Maps an implementation name (e.g. ``"conv2d.gemm"``) to whatever payload
# the provider registered — typically a kernel module.  ``repro.nn`` never
# imports the providers; packages like ``repro.perf`` register themselves
# on import and :mod:`repro.nn.functional` looks implementations up at
# dispatch time, falling back to its built-in path when absent.
_OP_IMPLS: dict[str, object] = {}


def register_op_impl(name: str, impl: object) -> None:
    """Register (or replace) an alternative implementation for an op."""
    _OP_IMPLS[str(name)] = impl


def get_op_impl(name: str) -> object | None:
    """Return the registered implementation for ``name`` (or ``None``)."""
    return _OP_IMPLS.get(name)


# ---------------------------------------------------------------------- #
# Free functions over multiple tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad, out=None):
        pieces = []
        for i in range(len(tensors)):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(index)])
        return tuple(pieces)

    out = Tensor._make(data, tensors, backward, "concat")
    if _TRACER is not None:
        arrays = tuple(t.data for t in tensors)
        buf = out.data
        _TRACER.record(out, tensors,
                       lambda: np.concatenate(arrays, axis=axis, out=buf),
                       op="concat")
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad, out=None):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    out = Tensor._make(data, tensors, backward, "stack")
    if _TRACER is not None:
        arrays = tuple(t.data for t in tensors)
        buf = out.data
        _TRACER.record(out, tensors,
                       lambda: np.stack(arrays, axis=axis, out=buf),
                       op="stack")
    return out


def _where(condition: np.ndarray, a: Tensor, b: Tensor, refresh=None) -> Tensor:
    """Shared select core.  ``refresh(x, y, out=condition)`` recomputes the
    condition from the operands during replay; without it the condition is
    an external input the trace cannot reproduce, so tracing poisons."""
    data = np.where(condition, a.data, b.data)

    def backward(grad, out=None):
        return (
            _unbroadcast(grad * condition, a.shape),
            _unbroadcast(grad * ~condition, b.shape),
        )

    out = Tensor._make(data, (a, b), backward, "where")
    if _TRACER is not None:
        if refresh is None:
            _TRACER.poison("where: condition is an external array")
        else:
            a_arr, b_arr, buf = a.data, b.data, out.data

            def run():
                refresh(a_arr, b_arr, out=condition)
                # Bit-identical to np.where: fill with b, overwrite the
                # selected entries with a (copyto broadcasts both sides).
                np.copyto(buf, b_arr)
                np.copyto(buf, np.broadcast_to(a_arr, buf.shape),
                          where=condition)

            _TRACER.record(out, (a, b), run, op="where")
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select: ``condition`` is a plain boolean array."""
    return _where(np.asarray(condition), a, b)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (ties send gradient to ``a``)."""
    return _where(a.data >= b.data, a, b, refresh=np.greater_equal)


def minimum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise minimum (ties send gradient to ``a``)."""
    return _where(a.data <= b.data, a, b, refresh=np.less_equal)
