"""Differentiable array operations: convolutions, pooling, losses.

Convolutions use ``numpy.lib.stride_tricks.sliding_window_view`` for the
forward pass (an im2col view without copying) and explicit scatter-adds for
the input gradient.  Shapes follow the PyTorch convention:

* 2-D: activations ``(B, C, H, W)``, weights ``(F, C, kH, kW)``.
* 3-D: activations ``(B, C, T, H, W)``, weights ``(F, C, kT, kH, kW)``.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.nn.tensor import (
    Tensor,
    get_op_impl,
    get_tracer,
    is_grad_enabled,
    make_op,
)


def _gemm_kernels():
    """The GEMM conv kernel module, or ``None`` when unavailable.

    ``repro.perf`` registers its kernels on import; importing it here (once)
    keeps ``import repro.nn`` working even if the perf package is removed.
    """
    impl = get_op_impl("conv2d.gemm")
    if impl is None:
        try:
            import repro.perf  # noqa: F401 — registers the kernels
        except ImportError:
            return None
        impl = get_op_impl("conv2d.gemm")
    return impl


def _pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected 2 values, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _triple(value) -> tuple[int, int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 3:
            raise ValueError(f"expected 3 values, got {value!r}")
        return int(value[0]), int(value[1]), int(value[2])
    return int(value), int(value), int(value)


# ---------------------------------------------------------------------- #
# Convolutions
# ---------------------------------------------------------------------- #
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Dispatches between two numerically-equivalent implementations: the
    strided-``einsum`` path below and the im2col GEMM fast path from
    ``repro.perf`` (selected by problem size; force with
    ``REPRO_CONV_IMPL=gemm|einsum``).
    """
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    batch, in_ch, height, width = x.shape
    out_ch, w_in_ch, kh, kw = weight.shape
    if w_in_ch != in_ch:
        raise ValueError(f"channel mismatch: input has {in_ch}, weight expects {w_in_ch}")

    kernels = _gemm_kernels()
    if kernels is not None:
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1
        if kernels.should_use_gemm(batch * out_h * out_w * in_ch * kh * kw):
            return _conv2d_gemm(kernels, x, weight, bias, (sh, sw), (ph, pw))

    padded = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    windows = sliding_window_view(padded, (kh, kw), axis=(2, 3))[:, :, ::sh, ::sw]
    raw = np.einsum("bchwij,fcij->bfhw", windows, weight.data, optimize=True)
    out = raw if bias is None else raw + bias.data.reshape(1, -1, 1, 1)
    out_h, out_w = out.shape[2], out.shape[3]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, out=None):
        grad_w = None
        if weight.requires_grad:
            grad_w = np.einsum("bchwij,bfhw->fcij", windows, grad, optimize=True)
        grad_x = None
        if x.requires_grad:
            grad_padded = np.zeros_like(padded)
            for ih in range(kh):
                for iw in range(kw):
                    contrib = np.einsum(
                        "bfhw,fc->bchw", grad, weight.data[:, :, ih, iw],
                        optimize=True,
                    )
                    grad_padded[
                        :, :, ih : ih + out_h * sh : sh, iw : iw + out_w * sw : sw
                    ] += contrib
            grad_x = grad_padded[:, :, ph : ph + height, pw : pw + width]
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3)) if bias.requires_grad else None
        return grad_x, grad_w, grad_b

    result = make_op(out, parents, backward, "conv2d")
    tracer = get_tracer()
    if tracer is not None:
        src, w_arr, buf = x.data, weight.data, result.data
        bias_r = None if bias is None else bias.data.reshape(1, -1, 1, 1)
        core = (slice(None), slice(None), slice(ph, ph + height),
                slice(pw, pw + width))

        def run():
            # Refresh ``padded`` (and through it the ``windows`` view the
            # backward closure captured), then recompute in place.
            padded[core] = src
            np.einsum("bchwij,fcij->bfhw", windows, w_arr, out=raw,
                      optimize=True)
            if bias_r is not None:
                np.add(raw, bias_r, out=buf)

        tracer.record(result, parents, run, op="conv2d")
    return result


def _conv2d_gemm(kernels, x: Tensor, weight: Tensor, bias: Tensor | None,
                 stride: tuple[int, int], padding: tuple[int, int]) -> Tensor:
    """conv2d via the im2col GEMM kernels (same contract as :func:`conv2d`)."""
    records_grad = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    # The plan's scratch buffer may only be reused when no backward closure
    # will capture ``cols`` (another same-shape forward would clobber it).
    out, cols, padded_shape = kernels.conv2d_forward(
        x.data, weight.data, stride, padding, reuse_scratch=not records_grad)
    if bias is not None:
        out += bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, fwd=None):
        grad_x, grad_w = kernels.conv2d_backward(
            grad, cols, weight.data, x.shape, padded_shape, stride, padding,
            x.requires_grad, weight.requires_grad)
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3)) if bias.requires_grad else None
        return grad_x, grad_w, grad_b

    result = make_op(out, parents, backward, "conv2d.gemm")
    tracer = get_tracer()
    if tracer is not None:
        tracer.record(
            result, parents,
            kernels.bind_replay(x.data, weight.data,
                                None if bias is None else bias.data,
                                cols, result.data, stride, padding),
            op="conv2d.gemm")
    return result


def conv3d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0) -> Tensor:
    """3-D cross-correlation over ``(T, H, W)`` volumes.

    Dispatches like :func:`conv2d`: strided ``einsum`` below, im2col GEMM
    from ``repro.perf`` for large problems (``REPRO_CONV_IMPL`` overrides).
    """
    st, sh, sw = _triple(stride)
    pt, ph, pw = _triple(padding)
    batch, in_ch, frames, height, width = x.shape
    out_ch, w_in_ch, kt, kh, kw = weight.shape
    if w_in_ch != in_ch:
        raise ValueError(f"channel mismatch: input has {in_ch}, weight expects {w_in_ch}")

    kernels = _gemm_kernels()
    if kernels is not None:
        out_t = (frames + 2 * pt - kt) // st + 1
        out_h = (height + 2 * ph - kh) // sh + 1
        out_w = (width + 2 * pw - kw) // sw + 1
        if kernels.should_use_gemm(
                batch * out_t * out_h * out_w * in_ch * kt * kh * kw):
            return _conv3d_gemm(kernels, x, weight, bias,
                                (st, sh, sw), (pt, ph, pw))

    padded = np.pad(x.data, ((0, 0), (0, 0), (pt, pt), (ph, ph), (pw, pw)))
    windows = sliding_window_view(padded, (kt, kh, kw), axis=(2, 3, 4))[
        :, :, ::st, ::sh, ::sw
    ]
    raw = np.einsum("bcthwijk,fcijk->bfthw", windows, weight.data, optimize=True)
    out = raw if bias is None else raw + bias.data.reshape(1, -1, 1, 1, 1)
    out_t, out_h, out_w = out.shape[2], out.shape[3], out.shape[4]

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, out=None):
        grad_w = None
        if weight.requires_grad:
            grad_w = np.einsum("bcthwijk,bfthw->fcijk", windows, grad, optimize=True)
        grad_x = None
        if x.requires_grad:
            grad_padded = np.zeros_like(padded)
            for it in range(kt):
                for ih in range(kh):
                    for iw in range(kw):
                        contrib = np.einsum(
                            "bfthw,fc->bcthw", grad, weight.data[:, :, it, ih, iw],
                            optimize=True,
                        )
                        grad_padded[
                            :,
                            :,
                            it : it + out_t * st : st,
                            ih : ih + out_h * sh : sh,
                            iw : iw + out_w * sw : sw,
                        ] += contrib
            grad_x = grad_padded[
                :, :, pt : pt + frames, ph : ph + height, pw : pw + width
            ]
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3, 4)) if bias.requires_grad else None
        return grad_x, grad_w, grad_b

    result = make_op(out, parents, backward, "conv3d")
    tracer = get_tracer()
    if tracer is not None:
        src, w_arr, buf = x.data, weight.data, result.data
        bias_r = None if bias is None else bias.data.reshape(1, -1, 1, 1, 1)
        core = (slice(None), slice(None), slice(pt, pt + frames),
                slice(ph, ph + height), slice(pw, pw + width))

        def run():
            padded[core] = src
            np.einsum("bcthwijk,fcijk->bfthw", windows, w_arr, out=raw,
                      optimize=True)
            if bias_r is not None:
                np.add(raw, bias_r, out=buf)

        tracer.record(result, parents, run, op="conv3d")
    return result


def _conv3d_gemm(kernels, x: Tensor, weight: Tensor, bias: Tensor | None,
                 stride: tuple[int, int, int],
                 padding: tuple[int, int, int]) -> Tensor:
    """conv3d via the im2col GEMM kernels (same contract as :func:`conv3d`)."""
    records_grad = is_grad_enabled() and (
        x.requires_grad or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    out, cols, padded_shape = kernels.conv3d_forward(
        x.data, weight.data, stride, padding, reuse_scratch=not records_grad)
    if bias is not None:
        out += bias.data.reshape(1, -1, 1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad, fwd=None):
        grad_x, grad_w = kernels.conv3d_backward(
            grad, cols, weight.data, x.shape, padded_shape, stride, padding,
            x.requires_grad, weight.requires_grad)
        if bias is None:
            return grad_x, grad_w
        grad_b = grad.sum(axis=(0, 2, 3, 4)) if bias.requires_grad else None
        return grad_x, grad_w, grad_b

    result = make_op(out, parents, backward, "conv3d.gemm")
    tracer = get_tracer()
    if tracer is not None:
        tracer.record(
            result, parents,
            kernels.bind_replay(x.data, weight.data,
                                None if bias is None else bias.data,
                                cols, result.data, stride, padding),
            op="conv3d.gemm")
    return result


# ---------------------------------------------------------------------- #
# Pooling
# ---------------------------------------------------------------------- #
def _pool3d_windows(data: np.ndarray, kernel: tuple[int, int, int],
                    stride: tuple[int, int, int]) -> np.ndarray:
    return sliding_window_view(data, kernel, axis=(2, 3, 4))[
        :, :, :: stride[0], :: stride[1], :: stride[2]
    ]


def max_pool3d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Max pooling over ``(T, H, W)``; ``stride`` defaults to the kernel."""
    kernel = _triple(kernel_size)
    stride = kernel if stride is None else _triple(stride)
    out_t = (x.shape[2] - kernel[0]) // stride[0] + 1
    out_h = (x.shape[3] - kernel[1]) // stride[1] + 1
    out_w = (x.shape[4] - kernel[2]) // stride[2] + 1
    # Forward as a running elementwise max over kernel-offset slabs: max is
    # order-independent, so this matches the window reduction exactly while
    # never materializing the (B, C, T', H', W', kt, kh, kw) window tensor.
    out = None
    for it in range(kernel[0]):
        for ih in range(kernel[1]):
            for iw in range(kernel[2]):
                slab = x.data[
                    :,
                    :,
                    it : it + out_t * stride[0] : stride[0],
                    ih : ih + out_h * stride[1] : stride[1],
                    iw : iw + out_w * stride[2] : stride[2],
                ]
                if out is None:
                    out = slab.copy()
                else:
                    np.maximum(out, slab, out=out)

    def backward(grad, fwd=None):
        # The window view is only needed to locate argmaxes, so it is built
        # lazily here — inference never pays for it.
        windows = _pool3d_windows(x.data, kernel, stride)
        grad_x = np.zeros_like(x.data)
        # Distribute each output's gradient to the argmax inside its window.
        mask = windows == out[..., None, None, None]
        # Normalize ties so the gradient total is preserved.
        weights = mask / mask.sum(axis=(5, 6, 7), keepdims=True)
        contrib = weights * grad[..., None, None, None]
        for it in range(kernel[0]):
            for ih in range(kernel[1]):
                for iw in range(kernel[2]):
                    grad_x[
                        :,
                        :,
                        it : it + out_t * stride[0] : stride[0],
                        ih : ih + out_h * stride[1] : stride[1],
                        iw : iw + out_w * stride[2] : stride[2],
                    ] += contrib[:, :, :, :, :, it, ih, iw]
        return (grad_x,)

    result = make_op(out, (x,), backward, "max_pool3d")
    tracer = get_tracer()
    if tracer is not None:
        src, buf = x.data, result.data
        slabs = [
            (slice(None), slice(None),
             slice(it, it + out_t * stride[0], stride[0]),
             slice(ih, ih + out_h * stride[1], stride[1]),
             slice(iw, iw + out_w * stride[2], stride[2]))
            for it in range(kernel[0])
            for ih in range(kernel[1])
            for iw in range(kernel[2])
        ]

        def run():
            np.copyto(buf, src[slabs[0]])
            for slab in slabs[1:]:
                np.maximum(buf, src[slab], out=buf)

        tracer.record(result, (x,), run, op="max_pool3d")
    return result


def avg_pool3d(x: Tensor, kernel_size, stride=None) -> Tensor:
    """Average pooling over ``(T, H, W)``; ``stride`` defaults to the kernel."""
    kernel = _triple(kernel_size)
    stride = kernel if stride is None else _triple(stride)
    windows = _pool3d_windows(x.data, kernel, stride)
    out = windows.mean(axis=(5, 6, 7))
    out_t, out_h, out_w = out.shape[2:]
    denom = float(np.prod(kernel))

    def backward(grad, fwd=None):
        grad_x = np.zeros_like(x.data)
        share = grad / denom
        for it in range(kernel[0]):
            for ih in range(kernel[1]):
                for iw in range(kernel[2]):
                    grad_x[
                        :,
                        :,
                        it : it + out_t * stride[0] : stride[0],
                        ih : ih + out_h * stride[1] : stride[1],
                        iw : iw + out_w * stride[2] : stride[2],
                    ] += share
        return (grad_x,)

    result = make_op(out, (x,), backward, "avg_pool3d")
    tracer = get_tracer()
    if tracer is not None:
        buf = result.data
        tracer.record(result, (x,),
                      lambda: np.mean(windows, axis=(5, 6, 7), out=buf),
                      op="avg_pool3d")
    return result


def global_avg_pool3d(x: Tensor) -> Tensor:
    """Adaptive average pooling to a single ``(1, 1, 1)`` cell per channel."""
    return x.mean(axis=(2, 3, 4), keepdims=True)


# ---------------------------------------------------------------------- #
# Losses / misc
# ---------------------------------------------------------------------- #
def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error between two tensors of equal shape."""
    diff = prediction - target
    return (diff * diff).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy with integer labels of shape ``(B,)``."""
    labels = np.asarray(labels)
    log_probs = logits.log_softmax(axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), labels]
    return -picked.mean()


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit (function form)."""
    return x.relu()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows of ``x`` onto the unit sphere along ``axis``."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norm


def pairwise_squared_distances(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs squared euclidean distances between rows of ``a`` and ``b``.

    ``a`` is ``(n, d)``, ``b`` is ``(m, d)``; the result is ``(n, m)``.
    Distances are clamped at zero to absorb floating-point noise.
    """
    a_sq = (a * a).sum(axis=1, keepdims=True)
    b_sq = (b * b).sum(axis=1, keepdims=True)
    cross = a @ b.transpose(1, 0)
    return (a_sq + b_sq.transpose(1, 0) - cross * 2.0).clip(0.0, None)
