"""Gradient-descent optimizers and step-decay scheduling.

The paper's SparseQuery schedule ("step size ... initialized as 0.1 and
decays every 50 steps with a rate of 0.9") is expressed with
:class:`StepLR` over either optimizer.
"""

from __future__ import annotations

import numpy as np

from repro.nn.modules import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear the gradient of every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one update; parameters with no gradient are skipped."""
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimizer cited by the paper [44]."""

    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        """Apply one bias-corrected Adam update."""
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._count = 0

    def step(self) -> None:
        """Advance one step; decays the LR on every ``step_size`` boundary."""
        self._count += 1
        if self._count % self.step_size == 0:
            self.optimizer.lr *= self.gamma

    @property
    def lr(self) -> float:
        return self.optimizer.lr
