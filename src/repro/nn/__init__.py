"""A compact reverse-mode autograd engine and neural-network toolkit.

This subpackage stands in for PyTorch in the reproduction: it provides a
dynamic-graph :class:`~repro.nn.tensor.Tensor`, differentiable 2-D/3-D
convolutions and pooling, recurrent cells, the usual layer zoo, and SGD/Adam
optimizers.  Every model in :mod:`repro.models` and every gradient-based
attack step in :mod:`repro.attacks` is built on it.
"""

from repro.nn.tensor import Tensor, no_grad, concatenate, stack, where, maximum, minimum
from repro.nn import functional
from repro.nn.modules import (
    Module,
    Sequential,
    Linear,
    Conv2d,
    Conv3d,
    BatchNorm,
    LayerNorm,
    ReLU,
    Sigmoid,
    Tanh,
    Dropout,
    Flatten,
    MaxPool3d,
    AvgPool3d,
    AdaptiveAvgPool3d,
    LSTMCell,
    LSTM,
    Identity,
)
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn import init
from repro.nn.serialization import save_state_dict, load_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "functional",
    "Module",
    "Sequential",
    "Linear",
    "Conv2d",
    "Conv3d",
    "BatchNorm",
    "LayerNorm",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "MaxPool3d",
    "AvgPool3d",
    "AdaptiveAvgPool3d",
    "LSTMCell",
    "LSTM",
    "Identity",
    "SGD",
    "Adam",
    "StepLR",
    "init",
    "save_state_dict",
    "load_state_dict",
]
