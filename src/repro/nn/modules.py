"""Layer/module system: a minimal ``nn.Module`` with the standard zoo.

Modules register parameters and submodules automatically through attribute
assignment, expose flat ``state_dict``/``load_state_dict`` for
serialization, and track a ``training`` flag used by BatchNorm and Dropout.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import (
    Tensor,
    concatenate,
    get_tracer,
    is_grad_enabled,
    stack,
)
from repro.utils.seeding import seeded_rng

# Forward-dispatch profiling hook (installed by repro.obs.profiler).
# ``_CALL_HOOK(module_type, seconds)`` fires after every Module.__call__;
# container modules (Sequential, backbones) include their children's time.
_CALL_HOOK: Callable[[str, float], None] | None = None


def set_call_hook(hook: Callable[[str, float], None] | None) -> None:
    """Install (or clear, with None) the module-forward profiling hook."""
    global _CALL_HOOK
    _CALL_HOOK = hook


def get_call_hook() -> Callable[[str, float], None] | None:
    """Return the currently-installed forward hook."""
    return _CALL_HOOK


class Parameter(Tensor):
    """A tensor flagged as a learnable parameter."""

    __slots__ = ()

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses define ``forward``; parameters and submodules assigned as
    attributes are discovered automatically.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    # -------------------------------------------------------------- #
    # Registration
    # -------------------------------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -------------------------------------------------------------- #
    # Traversal
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all learnable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs, depth first."""
        for name in self._buffers:
            yield f"{prefix}{name}", self._buffers[name]
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for module in self._modules.values():
            yield from module.modules()

    # -------------------------------------------------------------- #
    # Mode / gradient management
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BatchNorm, Dropout)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag: bool = True) -> "Module":
        """Freeze (``False``) or unfreeze (``True``) all parameters.

        Freezing lets the autograd engine skip weight-gradient work when a
        model is used only as a differentiable function of its *input* —
        the hot path of transfer-attack loops.
        """
        for param in self.parameters():
            param.requires_grad = flag
        return self

    # -------------------------------------------------------------- #
    # Serialization
    # -------------------------------------------------------------- #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name → array mapping of parameters and buffers."""
        state = {name: param.data for name, param in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (shapes must match)."""
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name.startswith("buffer:"):
                self._load_buffer(name[len("buffer:"):], value)
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r}")
            if params[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{params[name].shape} vs {value.shape}"
                )
            params[name].data = np.asarray(value, dtype=params[name].dtype)

    def _load_buffer(self, dotted: str, value: np.ndarray) -> None:
        module: Module = self
        *path, leaf = dotted.split(".")
        for part in path:
            module = module._modules[part]
        module._set_buffer(leaf, value)

    # -------------------------------------------------------------- #
    # Calling
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if _CALL_HOOK is None:
            return self.forward(*args, **kwargs)
        start = time.perf_counter()
        out = self.forward(*args, **kwargs)
        _CALL_HOOK(type(self).__name__, time.perf_counter() - start)
        return out


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Identity(Module):
    """Pass-through module (useful as an optional stage placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), fan_in=in_features, rng=rng)
        )
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.transpose(1, 0)
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """2-D convolution layer."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        kh, kw = F._pair(kernel_size)
        fan_in = in_channels * kh * kw
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kh, kw), fan_in, rng=rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)


class Conv3d(Module):
    """3-D convolution layer over ``(T, H, W)`` volumes."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, bias: bool = True, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        kt, kh, kw = F._triple(kernel_size)
        fan_in = in_channels * kt * kh * kw
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform((out_channels, in_channels, kt, kh, kw), fan_in, rng=rng)
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv3d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)


class BatchNorm(Module):
    """Batch normalization over the channel axis (axis 1) for any rank."""

    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.constant((num_features,), 1.0))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._axes_by_ndim: dict[int, tuple[tuple, tuple]] = {}

    def _stat_geometry(self, ndim: int) -> tuple[tuple, tuple]:
        cached = self._axes_by_ndim.get(ndim)
        if cached is None:
            cached = (
                tuple(i for i in range(ndim) if i != 1),
                tuple(self.num_features if i == 1 else 1 for i in range(ndim)),
            )
            self._axes_by_ndim[ndim] = cached
        return cached

    def forward(self, x: Tensor) -> Tensor:
        reduce_axes, stat_shape = self._stat_geometry(x.ndim)

        if self.training:
            tracer = get_tracer()
            if tracer is not None:
                # Training-mode batchnorm mutates running stats per call;
                # a replay would freeze them at their traced values.
                tracer.poison("batchnorm: training-mode running-stat update")
            mean = x.mean(axis=reduce_axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=reduce_axes, keepdims=True)
            m = self.momentum
            self._set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mean.data.reshape(-1),
            )
            self._set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * var.data.reshape(-1),
            )
        else:
            if not is_grad_enabled() or not (
                x.requires_grad or self.weight.requires_grad
                or self.bias.requires_grad
            ):
                # Inference fast path: same op sequence as the Tensor-graph
                # branch below — (x − μ) · inv_std · w + b, elementwise in
                # that order — so the result is bit-identical, but run
                # in-place on one buffer instead of allocating four.
                inv = (self.running_var.reshape(stat_shape) + self.eps) ** -0.5
                out = x.data - self.running_mean.reshape(stat_shape)
                out *= inv
                out *= self.weight.data.reshape(stat_shape)
                out += self.bias.data.reshape(stat_shape)
                result = Tensor(out)
                tracer = get_tracer()
                if tracer is not None:
                    # This path bypasses Tensor._make, so register the
                    # whole affine transform as one fusible step and pin
                    # the running stats (a _set_buffer rebinds them).
                    tracer.guard_buffer(self, "running_mean")
                    tracer.guard_buffer(self, "running_var")
                    mean_r = self.running_mean.reshape(stat_shape)
                    w_r = self.weight.data.reshape(stat_shape)
                    b_r = self.bias.data.reshape(stat_shape)

                    def bn(srcs, o, mean_r=mean_r, inv=inv, w_r=w_r, b_r=b_r):
                        np.subtract(srcs[0], mean_r, out=o)
                        o *= inv
                        o *= w_r
                        o += b_r

                    tracer.record_ew(result, (x, self.weight, self.bias),
                                     bn, (x.data,), op="batchnorm")
                return result
            tracer = get_tracer()
            if tracer is not None:
                # The running stats enter the graph as view-wrapping leaf
                # tensors below; pin the underlying buffers by identity.
                tracer.guard_buffer(self, "running_mean")
                tracer.guard_buffer(self, "running_var")
            mean = Tensor(self.running_mean.reshape(stat_shape))
            centered = x - mean
            var = Tensor(self.running_var.reshape(stat_shape))

        inv_std = (var + self.eps) ** -0.5
        normalized = centered * inv_std
        scale = self.weight.reshape(stat_shape)
        shift = self.bias.reshape(stat_shape)
        return normalized * scale + shift


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(init.constant((num_features,), 1.0))
        self.bias = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normalized = centered * ((var + self.eps) ** -0.5)
        return normalized * self.weight + self.bias


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng=None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = seeded_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        tracer = get_tracer()
        if tracer is not None:
            # Each training call draws a fresh mask from the module rng;
            # replaying a fixed mask would change the random stream.
            tracer.poison("dropout: training-mode rng draw")
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * Tensor(mask)


class Flatten(Module):
    """Flatten all dimensions after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool3d(Module):
    """Max pooling module over ``(T, H, W)``."""

    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool3d(x, self.kernel_size, self.stride)


class AvgPool3d(Module):
    """Average pooling module over ``(T, H, W)``."""

    def __init__(self, kernel_size, stride=None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool3d(x, self.kernel_size, self.stride)


class AdaptiveAvgPool3d(Module):
    """Global average pooling to a single cell per channel."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool3d(x)


class LSTMCell(Module):
    """Single-step LSTM cell with fused gate projection."""

    def __init__(self, input_size: int, hidden_size: int, rng=None) -> None:
        super().__init__()
        rng = seeded_rng(rng)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.input_proj = Linear(input_size, 4 * hidden_size, rng=rng)
        self.hidden_proj = Linear(hidden_size, 4 * hidden_size, bias=False, rng=rng)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h_prev, c_prev = state
        gates = self.input_proj(x) + self.hidden_proj(h_prev)
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c


class LSTM(Module):
    """Unrolled single-layer LSTM over inputs of shape ``(B, T, D)``.

    Returns ``(outputs, (h_final, c_final))`` where ``outputs`` has shape
    ``(B, T, hidden_size)``.
    """

    def __init__(self, input_size: int, hidden_size: int, rng=None) -> None:
        super().__init__()
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        batch, steps, _ = x.shape
        h = Tensor(np.zeros((batch, self.hidden_size)))
        c = Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(steps):
            h, c = self.cell(x[:, t], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
