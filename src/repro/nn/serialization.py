"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.nn.modules import Module


def save_state_dict(module: Module, path: str | os.PathLike) -> None:
    """Serialize ``module.state_dict()`` to ``path`` (``.npz``)."""
    state = module.state_dict()
    # npz keys cannot contain '/' portably; names use '.' already.
    np.savez(path, **state)


def load_state_dict(module: Module, path: str | os.PathLike) -> None:
    """Load weights saved by :func:`save_state_dict` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
