"""Weight-initialization schemes (He / Glorot and constants)."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import seeded_rng


def kaiming_uniform(shape: tuple[int, ...], fan_in: int,
                    rng: np.random.Generator | int | None = None) -> np.ndarray:
    """He-uniform initialization suited to ReLU networks."""
    rng = seeded_rng(rng)
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Glorot-uniform initialization suited to tanh/sigmoid networks."""
    rng = seeded_rng(rng)
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-bound, bound, size=shape).astype(np.float64)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    """Constant initialization (e.g. BatchNorm scale)."""
    return np.full(shape, float(value), dtype=np.float64)
