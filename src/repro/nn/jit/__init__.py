"""JIT-lite: trace a model forward once per shape, replay a flat schedule.

DUO-style black-box attacks evaluate thousands of small-shape forward
passes, so Python dispatch — walking the module tree, rebuilding the
autograd tape, re-allocating every intermediate — dominates BLAS time.
This package removes that overhead the same way the GEMM conv plan cache
removed per-call conv planning: pay the bookkeeping once per input
signature, then replay.

* :func:`compile` wraps a module in a :class:`CompiledModule` that traces
  the first call per ``(shape, dtype, grad-mode, training)`` signature and
  replays a pre-bound kernel schedule afterwards.
* :mod:`~repro.nn.jit.tracer` records each op's in-place replay rule while
  the eager pass runs — replay is bit-identical by construction because it
  re-executes the same numpy expressions in the same order into the same
  buffers.
* :mod:`~repro.nn.jit.fuse` collapses elementwise chains into single
  schedule slots and aliases their intermediates into one arena buffer.
* Guards fall back to eager on installed profiling/NaN hooks, rebound
  parameters or batchnorm buffers, and untraceable constructs (training
  batchnorm/dropout, data-dependent selects), so instrumentation and
  stateful defenses always observe real executions.

See DESIGN.md §14 for lifecycle, fusion rules, and fallback semantics.
"""

from repro.nn.jit.compiled import (
    CompiledModule,
    clear_trace_caches,
    compile,
    enabled,
    set_fuse,
    trace_cache_info,
)
from repro.nn.jit.program import TraceProgram
from repro.nn.jit.tracer import Tracer

__all__ = [
    "CompiledModule",
    "TraceProgram",
    "Tracer",
    "clear_trace_caches",
    "compile",
    "enabled",
    "set_fuse",
    "trace_cache_info",
]
