"""Fusion pass: collapse elementwise chains into single schedule slots.

A recorded schedule is a flat list of :class:`~repro.nn.jit.tracer.Step`
objects.  Adjacent elementwise steps where the producer's output is read
*only* by the consumer form a chain: the intermediate buffer is dead the
moment the consumer runs, so we alias it away — every step in the chain
computes through the chain's final buffer (the kernels are alias-safe by
contract) — and emit the whole chain as one runner.  Replay then touches
one buffer where eager allocated N, and the freed intermediates shrink
the arena.

Correctness conditions for merging step ``t`` into the chain ending at
``p`` (its immediate predecessor in the schedule):

* both are elementwise (``fn`` steps) and ``t`` reads ``p.out`` directly
  (by identity — a read through a *view* of ``p.out`` would dodge the
  rebinding, so views block fusion);
* ``p.out``'s last reader in the whole schedule is ``t`` (liveness is
  computed on base arrays, so a later view-read also keeps it alive);
* same shape and dtype (a broadcasting consumer needs the real buffer);
* neither buffer is protected (the program output must survive replay);
* both buffers are allocation roots (``base is None``) — aliasing a view
  would silently alias its whole base.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fuse_steps"]


def _base(arr: np.ndarray) -> np.ndarray:
    while isinstance(arr, np.ndarray) and arr.base is not None:
        arr = arr.base
    return arr


def fuse_steps(steps, protected: set[int]):
    """Group ``steps`` into slots, aliasing fused intermediates away.

    Returns ``(slots, stats)`` where each slot is a list of steps sharing
    one runner and ``stats`` counts fused steps and bytes of intermediate
    buffers eliminated.  Mutates the steps' ``srcs``/``out`` bindings.
    """
    last_read: dict[int, int] = {}
    for i, step in enumerate(steps):
        for src in step.srcs:
            if isinstance(src, np.ndarray):
                last_read[id(_base(src))] = i

    slots: list[list] = []
    fused_steps = 0
    bytes_saved = 0
    for i, step in enumerate(steps):
        prev = slots[-1][-1] if slots else None
        if (
            prev is not None
            and prev.fusible
            and step.fusible
            and any(src is prev.out for src in step.srcs)
            and last_read.get(id(prev.out), -1) == i
            and id(prev.out) not in protected
            and prev.out.shape == step.out.shape
            and prev.out.dtype == step.out.dtype
            and prev.out.base is None
            and step.out.base is None
        ):
            dead = prev.out
            bytes_saved += dead.nbytes
            fused_steps += 1
            for chained in slots[-1]:
                if chained.out is dead:
                    chained.out = step.out
                chained.srcs = tuple(
                    step.out if src is dead else src for src in chained.srcs)
            step.srcs = tuple(
                step.out if src is dead else src for src in step.srcs)
            slots[-1].append(step)
        else:
            slots.append([step])
    return slots, {"fused_steps": fused_steps, "bytes_saved": bytes_saved}
