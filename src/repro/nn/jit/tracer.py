"""Trace recording: capture one eager forward as a linear replay schedule.

The tracer rides along with normal eager execution (installed via
:func:`repro.nn.tensor.set_tracer`).  Each op contributes one of:

``record_ew``
    A fusible elementwise step: ``fn(srcs, out)`` recomputes ``out`` in
    place and is alias-safe (``out`` may alias a source), which is what
    lets the fusion pass collapse a chain's intermediates into one buffer.
``record``
    An opaque step: a zero-arg thunk that refreshes the op's output
    buffer (and any arrays its backward closure captured) in place.
``record_view``
    A no-op step: the output aliases its parent's memory, so refreshing
    the parent refreshes the view for free.

Safety comes from three mechanisms:

* **Coverage** — ``Tensor._make`` announces every op result via
  :meth:`expect`; a ``record_*`` call consumes the announcement.  An op
  with no replay rule therefore *poisons* the trace instead of silently
  dropping a computation from the schedule.
* **Leaf guards** — any tensor read by the trace that the trace does not
  itself compute (parameters, constants) is pinned by identity; replay is
  refused if ``tensor.data`` was rebound (e.g. ``load_state_dict``).
* **Poison** — constructs whose replay would diverge from eager semantics
  (training-mode batchnorm/dropout, externally-conditioned ``where``)
  mark the trace unusable; the caller falls back to eager permanently for
  that signature.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Step", "Tracer", "check_guards"]


class Step:
    """One schedule slot: either a fusible elementwise spec or a thunk."""

    __slots__ = ("run", "fn", "srcs", "out", "op")

    def __init__(self, run=None, fn=None, srcs=(), out=None, op=""):
        self.run = run      # zero-arg thunk (opaque steps)
        self.fn = fn        # fn(srcs, out) in-place kernel (fusible steps)
        self.srcs = srcs    # arrays this step reads (for liveness analysis)
        self.out = out      # the retained output buffer
        self.op = op

    @property
    def fusible(self) -> bool:
        return self.fn is not None


def check_guards(guards) -> bool:
    """True iff every pinned leaf/buffer still holds the traced array."""
    for obj, attr, arr in guards:
        current = obj.data if attr is None else getattr(obj, attr, None)
        if current is not arr:
            return False
    return True


class Tracer:
    """Records the replay schedule of one forward pass."""

    def __init__(self) -> None:
        self.steps: list[Step] = []
        #: ``(tensor, None, array)`` leaf pins and ``(module, name, array)``
        #: buffer pins, checked by identity before every replay.
        self.guards: list[tuple[object, str | None, np.ndarray]] = []
        self.poison_reason: str | None = None
        # Arrays the trace computes (or was handed as input): reads of
        # these need no guard because replay refreshes them.
        self._known: set[int] = set()
        self._guarded_tensors: set[int] = set()
        self._guarded_buffers: set[tuple[int, str]] = set()
        self._pending: tuple[int, str] | None = None

    # -------------------------------------------------------------- #
    # Coverage protocol (see Tensor._make)
    # -------------------------------------------------------------- #
    def expect(self, out, op: str) -> None:
        if self._pending is not None:
            self.poison(f"op {self._pending[1]!r} has no replay rule")
        self._pending = (id(out.data), op)

    def _consume(self, out) -> None:
        if self._pending is not None and self._pending[0] == id(out.data):
            self._pending = None

    def finalize(self) -> None:
        """Flush the coverage check after the traced forward returns."""
        if self._pending is not None:
            self.poison(f"op {self._pending[1]!r} has no replay rule")

    def poison(self, reason: str) -> None:
        """Mark the trace unusable; first reason wins."""
        if self.poison_reason is None:
            self.poison_reason = str(reason)

    # -------------------------------------------------------------- #
    # Inputs and guards
    # -------------------------------------------------------------- #
    def add_input(self, tensor) -> None:
        """Declare ``tensor`` as the replay-refreshed program input."""
        self._known.add(id(tensor.data))

    def guard_buffer(self, module, name: str) -> None:
        """Pin a module attribute (e.g. a batchnorm running stat)."""
        key = (id(module), name)
        if key not in self._guarded_buffers:
            self._guarded_buffers.add(key)
            self.guards.append((module, name, getattr(module, name)))

    def _note_parents(self, parents) -> None:
        for parent in parents:
            arr = parent.data
            if id(arr) in self._known:
                continue
            self._known.add(id(arr))
            base = arr
            while isinstance(base, np.ndarray) and base.base is not None:
                base = base.base
            if base is not arr and id(base) in self._known:
                # A view of a traced buffer (shared-data tensors, detach):
                # refreshed through its base, nothing to pin.
                continue
            if id(parent) not in self._guarded_tensors:
                self._guarded_tensors.add(id(parent))
                self.guards.append((parent, None, arr))

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def record(self, out, parents, run, reads=None, op: str = "") -> None:
        """Record an opaque step replayed by calling ``run()``."""
        self._consume(out)
        self._note_parents(parents)
        if reads is None:
            reads = tuple(p.data for p in parents)
        self._known.add(id(out.data))
        self.steps.append(Step(run=run, srcs=reads, out=out.data, op=op))

    def record_ew(self, out, parents, fn, srcs=None, op: str = "") -> None:
        """Record a fusible elementwise step ``fn(srcs, out)``."""
        self._consume(out)
        self._note_parents(parents)
        if srcs is None:
            srcs = tuple(p.data for p in parents)
        self._known.add(id(out.data))
        self.steps.append(Step(fn=fn, srcs=tuple(srcs), out=out.data, op=op))

    def record_view(self, out, parent) -> None:
        """Record that ``out`` aliases ``parent`` — no replay work."""
        self._consume(out)
        self._note_parents((parent,))
        self._known.add(id(out.data))
