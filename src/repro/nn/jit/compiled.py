"""compile(): signature-cached trace replay with eager fallback guards.

``CompiledModule`` wraps a module and dispatches each call:

* eager, when profiling/NaN-guard hooks are installed, when another trace
  is being recorded, or when the signature is known-poisoned;
* trace, on the first call per ``(shape, dtype, grad-flags, training)``
  signature — the eager pass runs normally (so its result is exact) while
  the tracer records the replay schedule;
* replay, afterwards — guard pins are identity-checked first, and a
  failed guard (rebound parameter or buffer) retraces.

The trace cache is LRU-bounded by ``REPRO_PLAN_CACHE_CAP`` (shared with
the GEMM conv plan cache) and evictions tick
``nn.jit.trace_cache.evictions``; fallbacks tick reason-labelled
``nn.jit.fallbacks`` counters so obs dashboards can see why replay was
declined.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict

import numpy as np

from repro.obs import counter
from repro.utils.envflags import env_bool, env_raw
from repro.nn import modules as _modules
from repro.nn import tensor as _tensor
from repro.nn.tensor import Tensor, is_grad_enabled, make_op
from repro.nn.jit.program import TraceProgram
from repro.nn.jit.tracer import Tracer

__all__ = [
    "CompiledModule",
    "clear_trace_caches",
    "compile",
    "enabled",
    "set_fuse",
    "trace_cache_info",
]

#: Programmatic override for the REPRO_NN_FUSE env switch (None = env).
_forced_fuse: bool | None = None

#: Every live CompiledModule, for cache introspection and global clears.
_COMPILED: "weakref.WeakSet[CompiledModule]" = weakref.WeakSet()


def enabled() -> bool:
    """Whether trace-and-fuse replay is globally switched on.

    Resolution order: :func:`set_fuse` override > ``REPRO_NN_FUSE`` >
    the active router's measured fuse decision (off unless a calibration
    profile shows replay winning).  Replay is bit-identical to eager
    (``nn.fused_vs_eager`` oracle), so routing it is a latency choice.
    """
    if _forced_fuse is not None:
        return _forced_fuse
    if env_raw("REPRO_NN_FUSE") is not None:
        return env_bool("REPRO_NN_FUSE")
    from repro.router import active_router

    return active_router().decide(
        "fuse", "default", ("off", "on"), "off") == "on"


def set_fuse(value: bool | None) -> None:
    """Force the global switch on/off, or ``None`` to follow the env."""
    global _forced_fuse
    _forced_fuse = None if value is None else bool(value)


class _Poisoned:
    """Cached negative result: this signature cannot be replayed."""

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason


class CompiledModule:
    """Trace-on-first-call, replay-afterwards wrapper around a module."""

    def __init__(self, module, fuse: bool = True) -> None:
        self._module = module
        self._fuse = bool(fuse)
        self._params = list(module.parameters())
        self._traces: "OrderedDict[tuple, TraceProgram | _Poisoned]" = \
            OrderedDict()
        _COMPILED.add(self)

    @property
    def module(self):
        return self._module

    @property
    def traces(self) -> int:
        return len(self._traces)

    def stats(self) -> dict:
        """Aggregate per-trace schedule stats (for benches/tests)."""
        programs = [p for p in self._traces.values()
                    if isinstance(p, TraceProgram)]
        return {
            "traces": len(programs),
            "poisoned": sum(isinstance(p, _Poisoned)
                            for p in self._traces.values()),
            "ops": sum(p.op_count for p in programs),
            "slots": sum(p.slot_count for p in programs),
            "fused_steps": sum(p.stats["fused_steps"] for p in programs),
            "bytes_saved": sum(p.stats["bytes_saved"] for p in programs),
            "arena_bytes": sum(p.arena_bytes for p in programs),
        }

    def clear(self) -> None:
        self._traces.clear()

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def __call__(self, x: Tensor) -> Tensor:
        if (_tensor._MAKE_HOOK is not None
                or _modules._CALL_HOOK is not None):
            # Profiler or NaN guard installed: replay would skip their
            # hook points, so instrumented runs stay eager.
            counter("nn.jit.fallbacks", reason="hooks").inc()
            return self._module(x)
        if _tensor.get_tracer() is not None:
            # Already recording an outer trace; run eagerly so our ops
            # are recorded into it instead of replayed invisibly.
            counter("nn.jit.fallbacks", reason="nested_trace").inc()
            return self._module(x)
        grad_on = is_grad_enabled()
        x_grad = bool(grad_on and x.requires_grad)
        flags = tuple(p.requires_grad for p in self._params) if grad_on \
            else ()
        grad_mode = x_grad or any(flags)
        signature = (x.data.shape, x.data.dtype.str, x_grad, flags,
                     bool(getattr(self._module, "training", False)))
        program = self._traces.get(signature)
        if program is None:
            counter("nn.jit.trace_misses").inc()
            return self._trace(signature, x, grad_mode)
        self._traces.move_to_end(signature)
        if isinstance(program, _Poisoned):
            counter("nn.jit.fallbacks", reason="poisoned").inc()
            return self._module(x)
        if not program.check_guards():
            counter("nn.jit.retraces").inc()
            del self._traces[signature]
            return self._trace(signature, x, grad_mode)
        counter("nn.jit.replays").inc()
        if program.grad_mode:
            return self._bridge(program, x, replayed=True)
        return Tensor(program.replay(x.data).copy())

    # -------------------------------------------------------------- #
    # Tracing
    # -------------------------------------------------------------- #
    def _trace(self, signature, x: Tensor, grad_mode: bool) -> Tensor:
        tracer = Tracer()
        # Trace against a private input tensor: the recorded graph must
        # not be rooted in the caller's tensor, whose .data the next
        # replay would never see.
        inner_in = Tensor(x.data.copy(), requires_grad=x.requires_grad)
        tracer.add_input(inner_in)
        _tensor.set_tracer(tracer)
        try:
            inner_out = self._module(inner_in)
        finally:
            _tensor.set_tracer(None)
        tracer.finalize()
        if not isinstance(inner_out, Tensor):
            tracer.poison("forward returned a non-Tensor")
        if tracer.poison_reason is not None:
            counter("nn.jit.poisoned").inc()
            self._store(signature, _Poisoned(tracer.poison_reason))
            if grad_mode:
                # The traced pass is rooted at the private input; rerun
                # eagerly so the caller's graph connects to their tensor.
                return self._module(x)
            return inner_out
        program = TraceProgram(tracer, inner_in, inner_out, grad_mode,
                               fuse=self._fuse)
        self._store(signature, program)
        if grad_mode:
            return self._bridge(program, x, replayed=False)
        return Tensor(program.output_data.copy())

    def _store(self, signature, program) -> None:
        from repro.perf.gemm_conv import plan_cache_cap

        self._traces[signature] = program
        self._traces.move_to_end(signature)
        cap = plan_cache_cap()
        while len(self._traces) > cap:
            self._traces.popitem(last=False)
            counter("nn.jit.trace_cache.evictions").inc()

    # -------------------------------------------------------------- #
    # Gradient bridge
    # -------------------------------------------------------------- #
    def _bridge(self, program: TraceProgram, x: Tensor,
                replayed: bool) -> Tensor:
        """Connect the retained inner graph to the caller's graph.

        The bridge op's backward replays the inner tape: parameter grads
        accumulate directly on the (shared) parameter tensors, and the
        input grad is forwarded to the caller's tensor.  Parameters are
        listed as parents so ``requires_grad`` propagates even when the
        input itself does not require grad; their slots in the returned
        grad tuple are ``None`` because the inner tape already
        accumulated them.
        """
        if replayed:
            program.replay_forward(x.data)
        else:
            program.serial += 1
        serial = program.serial
        inner_in, inner_out = program.input, program.output
        grad_parents = [p for p in self._params if p.requires_grad]

        def backward(grad, out=None):
            if program.serial != serial:
                raise RuntimeError(
                    "jit: backward through a stale replay — a later "
                    "forward overwrote this trace's buffers; run "
                    "multi-forward gradient accumulation eagerly")
            inner_in.grad = None
            inner_out.backward(grad)
            input_grad = inner_in.grad
            inner_in.grad = None
            return (input_grad,) + (None,) * len(grad_parents)

        return make_op(inner_out.data.copy(), (x, *grad_parents), backward,
                       "jit.replay")


def compile(module, fuse: bool = True) -> CompiledModule:
    """Wrap ``module`` for trace-record/replay execution.

    ``fuse=False`` still replays the flat schedule but skips the
    elementwise-chain fusion pass (useful for benchmarking the two
    contributions separately).
    """
    if isinstance(module, CompiledModule):
        return module
    return CompiledModule(module, fuse=fuse)


def trace_cache_info() -> dict:
    """Aggregate trace-cache stats across all live compiled modules."""
    modules = list(_COMPILED)
    info = {"modules": len(modules), "traces": 0, "poisoned": 0,
            "arena_bytes": 0}
    for compiled in modules:
        stats = compiled.stats()
        info["traces"] += stats["traces"]
        info["poisoned"] += stats["poisoned"]
        info["arena_bytes"] += stats["arena_bytes"]
    return info


def clear_trace_caches() -> None:
    """Drop every cached trace (e.g. after mutating kernel behaviour)."""
    for compiled in list(_COMPILED):
        compiled.clear()
