"""TraceProgram: a finalized, replayable schedule for one signature.

Inference programs collapse the autograd tape entirely: the Tensor graph
from the traced pass is dropped and only the flat runner list, the input
and output buffers, and the guard pins survive.  Every intermediate that
fusion did not alias away is retained inside the runner closures — that
retained set *is* the buffer arena, owned by the program and reused by
every replay.

Gradient programs keep the traced inner graph alive instead: replay
refreshes the forward buffers in place (every backward closure captured
those same arrays, so the retained tape computes gradients for the *new*
input), and :mod:`~repro.nn.jit.compiled` bridges the inner graph to the
caller's graph.  ``serial`` tracks which replay last wrote the buffers so
a backward against overwritten state fails loudly instead of silently
using the wrong activations.
"""

from __future__ import annotations

import numpy as np

from repro.nn.jit.fuse import fuse_steps
from repro.nn.jit.tracer import check_guards

__all__ = ["TraceProgram"]


def _base(arr: np.ndarray) -> np.ndarray:
    while isinstance(arr, np.ndarray) and arr.base is not None:
        arr = arr.base
    return arr


def _slot_runner(slot):
    """One callable per slot; fused chains run their kernels in order."""
    if len(slot) == 1:
        step = slot[0]
        if step.fn is None:
            return step.run
        fn, srcs, out = step.fn, step.srcs, step.out
        return lambda: fn(srcs, out)
    items = [(step.fn, step.srcs, step.out) for step in slot]

    def run():
        for fn, srcs, out in items:
            fn(srcs, out)

    return run


class TraceProgram:
    """A pre-bound kernel schedule for one input signature."""

    def __init__(self, tracer, inp, out, grad_mode: bool,
                 fuse: bool = True) -> None:
        self.guards = tracer.guards
        self.grad_mode = bool(grad_mode)
        steps = tracer.steps
        self.op_count = len(steps)
        #: Monotonic replay counter for grad-mode staleness detection.
        self.serial = 0
        if grad_mode:
            # Keep the inner graph: backward closures replay the tape.
            self.input = inp
            self.output = out
            self.runs = [_slot_runner([step]) for step in steps]
            self.stats = {"fused_steps": 0, "bytes_saved": 0}
            self.arena_bytes = sum(
                {id(step.out): step.out.nbytes for step in steps}.values())
        else:
            protected = {id(_base(out.data))}
            if fuse:
                slots, self.stats = fuse_steps(steps, protected)
            else:
                slots = [[step] for step in steps]
                self.stats = {"fused_steps": 0, "bytes_saved": 0}
            self.runs = [_slot_runner(slot) for slot in slots]
            # Collapse the tape: only the buffers inside the runner
            # closures (the arena) plus the endpoints survive.
            self.input = None
            self.output = None
            self.input_data = inp.data
            self.output_data = out.data
            self.arena_bytes = sum(
                {id(step.out): step.out.nbytes
                 for slot in slots for step in slot}.values())
        self.slot_count = len(self.runs)

    def check_guards(self) -> bool:
        return check_guards(self.guards)

    def replay(self, x_data: np.ndarray) -> np.ndarray:
        """Inference replay: refresh the arena, return the output buffer.

        The returned array is owned by the program and overwritten by the
        next replay — callers must copy (CompiledModule does).
        """
        np.copyto(self.input_data, x_data)
        for run in self.runs:
            run()
        return self.output_data

    def replay_forward(self, x_data: np.ndarray) -> None:
        """Grad-mode replay: refresh the retained tape's buffers in place."""
        np.copyto(self.input.data, x_data)
        for run in self.runs:
            run()
        self.serial += 1
