"""Lightweight logging configured once per process."""

from __future__ import annotations

import logging
import os

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy.

    Log level is controlled by the ``REPRO_LOG_LEVEL`` environment variable
    (default ``WARNING`` so test runs stay quiet).
    """
    global _CONFIGURED
    if not _CONFIGURED:
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
        logging.basicConfig(
            level=getattr(logging, level, logging.WARNING),
            format="%(asctime)s %(name)s %(levelname)s: %(message)s",
        )
        _CONFIGURED = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
