"""Lightweight logging scoped to the ``repro`` logger hierarchy.

A library must not call ``logging.basicConfig``: that reconfigures the
*root* logger for the whole host process.  Instead we attach a single
handler to the ``repro`` parent logger (with ``propagate = False`` so
records do not also bubble to the root) and leave every other logger
alone.  The level comes from ``REPRO_LOG_LEVEL`` and is re-read on every
:func:`get_logger` call, so tests and experiment runners can override it
at runtime with ``monkeypatch.setenv`` / ``os.environ``.
"""

from __future__ import annotations

import logging
import os

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_HANDLER: logging.Handler | None = None


def _repro_root() -> logging.Logger:
    """Return the ``repro`` parent logger, attaching our handler once."""
    global _HANDLER
    root = logging.getLogger("repro")
    if _HANDLER is None or _HANDLER not in root.handlers:
        _HANDLER = logging.StreamHandler()
        _HANDLER.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(_HANDLER)
        root.propagate = False
    return root


def get_logger(name: str) -> logging.Logger:
    """Return a namespaced logger under the ``repro`` hierarchy.

    Log level is controlled by the ``REPRO_LOG_LEVEL`` environment
    variable (default ``WARNING`` so test runs stay quiet), re-read on
    every call.
    """
    root = _repro_root()
    level = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
    root.setLevel(getattr(logging, level, logging.WARNING))
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
