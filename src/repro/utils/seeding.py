"""Deterministic random-number management.

Every stochastic component in the library (dataset synthesis, model
initialization, attack search) accepts either an integer seed or a
``numpy.random.Generator``.  Centralizing the conversion here keeps
experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

_GLOBAL_SEED: int | None = None


def set_global_seed(seed: int) -> None:
    """Set a process-wide default seed used when a component gets none."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed)


def get_global_seed() -> int | None:
    """Return the process-wide default seed, if one was set."""
    return _GLOBAL_SEED


def seeded_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer, or
    ``None`` (falls back to the global seed, else OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)


class SeedSequence:
    """Deterministically derive independent child seeds from a root seed.

    Used by experiment runners so that, e.g., each (dataset, model, attack)
    cell of a results table gets its own reproducible stream.

    >>> ss = SeedSequence(7)
    >>> a, b = ss.child("dataset"), ss.child("model")
    >>> a != b
    True
    >>> SeedSequence(7).child("dataset") == a
    True
    """

    def __init__(self, root: int) -> None:
        self.root = int(root)

    def child(self, *labels: object) -> int:
        """Derive a 32-bit child seed from the root seed and label path."""
        key = "/".join(str(label) for label in labels)
        mixed = np.random.SeedSequence(
            [self.root, *(ord(c) for c in key)]
        ).generate_state(1)[0]
        return int(mixed)

    def rng(self, *labels: object) -> np.random.Generator:
        """Return a generator seeded by :meth:`child`."""
        return np.random.default_rng(self.child(*labels))
