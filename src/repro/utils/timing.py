"""Deprecated wall-clock timing shim.

:class:`Timer` predates the observability subsystem; new code should use
:func:`repro.obs.tracing.span`, which records the same wall time *and*
feeds the span aggregates / Chrome traces.  The shim is kept so old
experiment scripts keep working — it delegates to a span named
``utils.timer`` and mirrors the span's duration into ``.elapsed``.
"""

from __future__ import annotations

import time
import warnings

from repro.obs.tracing import span


class Timer:
    """Deprecated: use ``repro.obs.tracing.span`` instead.

    Context manager measuring elapsed wall-clock seconds.

    >>> import warnings
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore", DeprecationWarning)
    ...     with Timer() as t:
    ...         _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.utils.timing.Timer is deprecated; "
            "use repro.obs.tracing.span instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.start = 0.0
        self.elapsed = 0.0
        self._span = None

    def __enter__(self) -> "Timer":
        self._span = span("utils.timer").__enter__()
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        # The span's own duration is 0.0 on the no-op path, so keep an
        # independent clock — the shim must stay accurate either way.
        self.elapsed = time.perf_counter() - self.start
        if self._span is not None:
            self._span.__exit__(*exc)
            self._span = None
