"""Shared utilities: deterministic seeding and lightweight logging.

``Timer`` is a deprecated shim kept for backward compatibility; use
``repro.obs.tracing.span`` for all new timing needs.
"""

from repro.utils.seeding import SeedSequence, seeded_rng, set_global_seed
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

__all__ = [
    "SeedSequence",
    "seeded_rng",
    "set_global_seed",
    "get_logger",
    "Timer",
]
