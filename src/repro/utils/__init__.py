"""Shared utilities: deterministic seeding and lightweight logging.

``Timer`` is a deprecated shim kept for backward compatibility; use
``repro.obs.tracing.span`` for all new timing needs.
"""

from repro.utils.seeding import SeedSequence, seeded_rng, set_global_seed
from repro.utils.logging import get_logger
from repro.utils.timing import Timer
from repro.utils.envflags import (
    env_bool,
    env_choice,
    env_int,
    env_raw,
    env_set,
    env_str,
)

__all__ = [
    "SeedSequence",
    "seeded_rng",
    "set_global_seed",
    "get_logger",
    "Timer",
    "env_bool",
    "env_choice",
    "env_int",
    "env_raw",
    "env_set",
    "env_str",
]
