"""Shared utilities: deterministic seeding, lightweight logging, timing."""

from repro.utils.seeding import SeedSequence, seeded_rng, set_global_seed
from repro.utils.logging import get_logger
from repro.utils.timing import Timer

__all__ = [
    "SeedSequence",
    "seeded_rng",
    "set_global_seed",
    "get_logger",
    "Timer",
]
