"""One parser for every ``REPRO_*`` environment flag.

Before this module each flag parsed itself, and the failure behaviour
had drifted: ``REPRO_EMBED_CACHE=abc`` raised, ``REPRO_SERVING_BATCH=abc``
silently became 8, and ``REPRO_SERVING_WORKERS=0`` silently became 1.  A
typo'd flag that silently falls back to the default is worse than a
crash — the run *looks* configured but is not, and benchmarks sweep
these flags programmatically.

The contract, uniform across flags:

* **unset or empty/whitespace** → the documented default (an empty
  string is indistinguishable from unset, matching shell ``VAR= cmd``
  usage);
* **a valid value** → that value, normalised (ints parsed, choices
  lower-cased, booleans mapped from ``1/true/yes/on`` / ``0/false/no/off``);
* **anything else** → :class:`ValueError` naming the flag, the raw
  value, and what would have been accepted.  Never a silent default.

``0`` is a *valid* value wherever the flag's ``minimum`` admits it
(``REPRO_EMBED_CACHE=0`` disables the cache); flags with ``minimum=1``
(``REPRO_SERVING_BATCH``, ``REPRO_SERVING_WORKERS``) now reject ``0``
loudly instead of swallowing it.
"""

from __future__ import annotations

import os
from typing import Sequence

#: Accepted spellings for boolean flags (case-insensitive).
TRUE_VALUES = ("1", "true", "yes", "on")
FALSE_VALUES = ("0", "false", "no", "off")


def env_raw(name: str) -> str | None:
    """The stripped value of ``name``, or ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw if raw else None


def env_set(name: str) -> bool:
    """Whether ``name`` carries a non-empty value."""
    return env_raw(name) is not None


def env_int(name: str, default: int, *, minimum: int | None = None,
            maximum: int | None = None) -> int:
    """Integer flag; raises on non-integers and out-of-range values."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{name}={raw!r} is not an integer") from exc
    if minimum is not None and value < minimum:
        raise ValueError(
            f"{name}={value} is below the minimum of {minimum}")
    if maximum is not None and value > maximum:
        raise ValueError(
            f"{name}={value} is above the maximum of {maximum}")
    return value


def env_bool(name: str, default: bool = False) -> bool:
    """Boolean flag; raises on anything outside the accepted spellings."""
    raw = env_raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered in TRUE_VALUES:
        return True
    if lowered in FALSE_VALUES:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a boolean; use one of "
        f"{TRUE_VALUES + FALSE_VALUES}")


def env_choice(name: str, choices: Sequence[str], default: str) -> str:
    """Enumerated flag (case-insensitive); raises on unknown values."""
    raw = env_raw(name)
    if raw is None:
        return default
    lowered = raw.lower()
    if lowered not in choices:
        raise ValueError(
            f"{name}={raw!r} is not a known value; "
            f"choose from {sorted(choices)}")
    return lowered


def env_str(name: str, default: str = "") -> str:
    """Free-form string flag (paths, directories); stripped."""
    raw = env_raw(name)
    return default if raw is None else raw


__all__ = [
    "TRUE_VALUES",
    "FALSE_VALUES",
    "env_raw",
    "env_set",
    "env_int",
    "env_bool",
    "env_choice",
    "env_str",
]
