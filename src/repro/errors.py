"""Consolidated exception hierarchy for the retrieval plane.

Before this module, error types were scattered across the modules that
raised them (``QueryBudgetExceeded`` in ``retrieval.service``,
``NodeDownError`` in ``retrieval.nodes``) and callers had to import from
implementation files.  Everything now lives here; the old import paths
re-export these classes, so existing code keeps working unchanged.

Hierarchy
---------
``ReproError``
    Root of all library-defined errors.
``RetrievalError``
    Anything raised by the retrieval plane.
``QueryBudgetExceeded``
    The attacker exhausted the service's query budget (server-side
    throttling of suspicious accounts).
``NodeDownError``
    A data node is unreachable — either taken down explicitly or made
    flaky by an installed :class:`~repro.resilience.FaultPlan`.
``CircuitOpenError``
    A per-node circuit breaker is open; the coordinator refuses to send
    traffic to the node until the cooldown elapses.
``RetrievalUnavailable``
    A query could not be served *exactly*: every replica of at least one
    shard is unreachable (and the gallery is configured to refuse
    degraded answers).  Attack loops treat this as a checkpointable,
    resumable condition — the query is refunded, not counted.
``DeadlineExceeded``
    A node (or the whole scatter) blew through the configured per-query
    deadline.  A subclass of :class:`RetrievalUnavailable` because a
    deadline miss is one way a query becomes unservable.
``ServiceOverloaded``
    The serving front end refused to even enqueue the request — a
    ``429``-style admission rejection (per-tenant rate limit hit, queue
    full, or queued work shed under load/outage).  Carries an optional
    ``retry_after_s`` hint, mirroring the ``Retry-After`` header a real
    API would send.
"""

from __future__ import annotations


class ReproError(RuntimeError):
    """Root of all library-defined errors."""


class RetrievalError(ReproError):
    """Base class for errors raised by the retrieval plane."""


class QueryBudgetExceeded(RetrievalError):
    """Raised when the attacker exceeds the configured query budget."""


class NodeDownError(RetrievalError):
    """Raised when a downed (or fault-injected) node is queried."""


class CircuitOpenError(RetrievalError):
    """Raised when a node's circuit breaker short-circuits a request."""


class RetrievalUnavailable(RetrievalError):
    """Raised when a query cannot be served exactly by the live replicas.

    Services refund the query's accounting when this propagates, so a
    resumed attack sees the same query count as an uninterrupted one.
    """


class DeadlineExceeded(RetrievalUnavailable):
    """Raised when a query misses its configured deadline."""


class ServiceOverloaded(RetrievalError):
    """``429``-style admission rejection from the serving front end.

    The request was never issued against the retrieval engine, so there
    is nothing to refund; ``retry_after_s`` (when not ``None``) hints how
    long the client should back off before retrying.
    """

    def __init__(self, message: str = "service overloaded",
                 retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


__all__ = [
    "ReproError",
    "RetrievalError",
    "QueryBudgetExceeded",
    "NodeDownError",
    "CircuitOpenError",
    "RetrievalUnavailable",
    "DeadlineExceeded",
    "ServiceOverloaded",
]
