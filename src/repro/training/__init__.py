"""Model training: metric-loss victim training and system assembly."""

from repro.training.trainer import MetricTrainer, TrainingHistory
from repro.training.victim import VictimSystem, build_victim_system

__all__ = [
    "MetricTrainer",
    "TrainingHistory",
    "VictimSystem",
    "build_victim_system",
]
