"""Metric-learning trainer for feature extractors.

Samples class-balanced mini-batches (``P`` classes × ``K`` clips) so that
pair-based losses always see positives, and jointly optimizes the
extractor and any loss-side parameters (ArcFace prototypes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.feature_extractor import FeatureExtractor
from repro.nn import Adam, Tensor
from repro.nn.modules import Module
from repro.obs import counter, gauge, span
from repro.utils.logging import get_logger
from repro.utils.seeding import seeded_rng
from repro.video.types import Video, to_model_input

logger = get_logger("training")


@dataclass
class TrainingHistory:
    """Per-epoch average loss values."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")


class MetricTrainer:
    """Train a :class:`FeatureExtractor` with a metric loss.

    Parameters
    ----------
    loss:
        A callable/module ``loss(embeddings, labels) → scalar Tensor``.
    classes_per_batch / clips_per_class:
        Class-balanced batch composition (``P × K`` sampling).
    """

    def __init__(self, loss, lr: float = 5e-3, epochs: int = 8,
                 classes_per_batch: int = 4, clips_per_class: int = 2,
                 rng=None) -> None:
        self.loss = loss
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.classes_per_batch = int(classes_per_batch)
        self.clips_per_class = int(clips_per_class)
        self.rng = seeded_rng(rng)

    def _batches(self, videos: list[Video]) -> list[list[Video]]:
        """Yield class-balanced batches covering the epoch."""
        by_class: dict[int, list[Video]] = {}
        for video in videos:
            by_class.setdefault(video.label, []).append(video)
        classes = sorted(by_class)
        # One epoch = enough batches to touch each clip roughly once.
        total = len(videos)
        batch_size = self.classes_per_batch * self.clips_per_class
        num_batches = max(1, total // batch_size)
        batches = []
        for _ in range(num_batches):
            chosen = self.rng.choice(
                classes, size=min(self.classes_per_batch, len(classes)),
                replace=False,
            )
            batch: list[Video] = []
            for label in chosen:
                pool = by_class[int(label)]
                picks = self.rng.choice(
                    len(pool), size=min(self.clips_per_class, len(pool)),
                    replace=False,
                )
                batch.extend(pool[p] for p in picks)
            batches.append(batch)
        return batches

    def train(self, extractor: FeatureExtractor,
              videos: list[Video]) -> TrainingHistory:
        """Run the optimization; returns per-epoch loss history."""
        params = list(extractor.parameters())
        if isinstance(self.loss, Module):
            params += list(self.loss.parameters())
        optimizer = Adam(params, lr=self.lr)
        history = TrainingHistory()
        extractor.train()
        for epoch in range(self.epochs):
            epoch_losses = []
            with span("training.epoch", epoch=epoch + 1):
                for batch in self._batches(videos):
                    with span("training.batch"):
                        labels = np.asarray([video.label for video in batch])
                        inputs = Tensor(to_model_input(batch))
                        optimizer.zero_grad()
                        embeddings = extractor(inputs)
                        loss_value = self.loss(embeddings, labels)
                        if not loss_value.requires_grad:
                            continue  # degenerate batch (no positives/negatives)
                        loss_value.backward()
                        optimizer.step()
                        epoch_losses.append(loss_value.item())
                    counter("training.batches").inc()
            counter("training.epochs").inc()
            mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
            gauge("training.epoch_loss").set(mean_loss)
            history.losses.append(mean_loss)
            logger.info("epoch %d/%d loss=%.4f", epoch + 1, self.epochs, mean_loss)
        extractor.eval()
        return history
