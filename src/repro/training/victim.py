"""Victim-system assembly: train a model and stand up the retrieval service."""

from __future__ import annotations

from dataclasses import dataclass

from repro.losses.registry import create_loss
from repro.models.registry import create_feature_extractor
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.service import RetrievalService
from repro.training.trainer import MetricTrainer, TrainingHistory
from repro.utils.seeding import SeedSequence
from repro.video.datasets import SyntheticVideoDataset
from repro.video.types import Video


@dataclass
class VictimSystem:
    """A fully assembled victim: engine (owner view) + service (attacker view).

    ``video_lookup`` maps gallery ids back to videos — the public content a
    real attacker could download after seeing a retrieval list.
    """

    engine: RetrievalEngine
    service: RetrievalService
    gallery_videos: list[Video]
    history: TrainingHistory

    @property
    def video_lookup(self) -> dict[str, Video]:
        return {video.video_id: video for video in self.gallery_videos}


def build_victim_system(dataset: SyntheticVideoDataset, backbone: str = "i3d",
                        loss: str = "arcface", feature_dim: int = 64,
                        width: int = 4, m: int = 10, num_nodes: int = 4,
                        epochs: int = 8, lr: float = 5e-3,
                        similarity: str = "l2", seed: int = 0) -> VictimSystem:
    """Train a victim feature extractor and index the training gallery.

    Mirrors the paper's setup: the victim model is trained on the dataset
    train split with a metric loss, and the train split doubles as the
    retrieval gallery.
    """
    seeds = SeedSequence(seed)
    extractor = create_feature_extractor(
        backbone, feature_dim=feature_dim, width=width,
        rng=seeds.rng("model", backbone),
    )
    loss_fn = create_loss(loss, dataset.num_classes, feature_dim,
                          rng=seeds.rng("loss", loss))
    trainer = MetricTrainer(loss_fn, lr=lr, epochs=epochs,
                            rng=seeds.rng("trainer"))
    history = trainer.train(extractor, dataset.train)
    extractor.requires_grad_(False)

    engine = RetrievalEngine(extractor, similarity=similarity,
                             num_nodes=num_nodes)
    engine.index_videos(dataset.train)
    service = RetrievalService.build(engine, m=m)
    return VictimSystem(engine=engine, service=service,
                        gallery_videos=list(dataset.train), history=history)
