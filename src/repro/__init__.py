"""repro — a reproduction of DUO (ICDCS 2023).

DUO is a stealthy, targeted, black-box adversarial-example attack on
DNN-based video retrieval systems that sparsifies perturbations over both
frames and pixels.  This package implements the full system described in
the paper: the retrieval substrate, victim/surrogate models, the
SparseTransfer + SparseQuery attack pipeline, the baseline attacks, the
defenses, and the evaluation harness.

Subpackages
-----------
``repro.nn``          numpy autograd engine and layers (PyTorch stand-in)
``repro.video``       video container + synthetic UCF101/HMDB51 stand-ins
``repro.models``      I3D / TPN / SlowFast / ResNet / C3D backbones
``repro.losses``      ArcFace / Lifted / Angular / ranked-triplet losses
``repro.retrieval``   distributed sharded gallery + black-box service
``repro.training``    victim training and system assembly
``repro.surrogate``   model stealing and surrogate training
``repro.attacks``     DUO (SparseTransfer/SparseQuery), Vanilla, TIMI, HEU
``repro.defenses``    feature squeezing, Noise2Self
``repro.metrics``     mAP, AP@m, Spa, PScore, NDCG-style list similarity
``repro.experiments`` one runner per paper table/figure
"""

import os as _os

# The reproduction targets small tensors on few-core machines, where BLAS
# thread pools cost far more than they save (20× slowdowns observed).
# Respect explicit user settings; otherwise default to single-threaded.
for _var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS",
             "NUMEXPR_NUM_THREADS", "VECLIB_MAXIMUM_THREADS"):
    _os.environ.setdefault(_var, "1")

__version__ = "1.0.0"
