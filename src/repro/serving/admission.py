"""Per-tenant admission control: token buckets and query budgets.

Admission decisions depend only on the virtual arrival time and the
tenant's own history, never on queue or batch state — so they are
identical whatever batch size the scheduler runs with.  That invariance
is what lets the serving oracle replay the same timeline sequentially
against a bare :class:`~repro.retrieval.service.RetrievalService` and
demand bit-identical per-tenant accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import counter
from repro.serving.config import ServingConfig, TenantPolicy


class TokenBucket:
    """The classic rate limiter, refilled on the virtual clock."""

    def __init__(self, rate_per_s: float, burst: int) -> None:
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last_s = 0.0

    def _refill(self, now_s: float) -> None:
        if now_s > self._last_s:
            self.tokens = min(
                self.burst,
                self.tokens + (now_s - self._last_s) * self.rate_per_s)
            self._last_s = now_s

    def try_take(self, now_s: float) -> float:
        """Take one token; returns 0.0 on success, else the retry-after
        hint in seconds until a token will be available."""
        self._refill(now_s)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate_per_s


@dataclass
class TenantLedger:
    """Per-tenant conservation ledger, mirroring the service's.

    ``admitted == served + refunded + in_flight`` at all times, where
    in-flight requests are the ones still queued or mid-dispatch.
    """

    policy: TenantPolicy
    admitted: int = 0
    served: int = 0
    refunded: int = 0
    rejected: int = 0
    bucket: TokenBucket | None = field(default=None)

    @property
    def in_flight(self) -> int:
        return self.admitted - self.served - self.refunded

    @property
    def budget_used(self) -> int:
        """Budget slots currently held (served + still in flight)."""
        return self.admitted - self.refunded


@dataclass(frozen=True)
class Rejection:
    """Why a request was not admitted, with the 429 retry hint."""

    reason: str  # "rate_limited" | "tenant_budget"
    retry_after_s: float | None = None


class AdmissionController:
    """Applies :class:`TenantPolicy` rules at arrival time."""

    def __init__(self, config: ServingConfig) -> None:
        self.config = config
        self.tenants: dict[str, TenantLedger] = {}

    def ledger(self, tenant: str) -> TenantLedger:
        ledger = self.tenants.get(tenant)
        if ledger is None:
            policy = self.config.policy_for(tenant)
            bucket = None
            if policy.rate_per_s is not None:
                bucket = TokenBucket(policy.rate_per_s, policy.burst)
            ledger = TenantLedger(policy=policy, bucket=bucket)
            self.tenants[tenant] = ledger
        return ledger

    def admit(self, tenant: str, now_s: float) -> Rejection | None:
        """Admit one request at virtual time ``now_s``.

        Returns ``None`` on success (the tenant's ``admitted`` count is
        bumped) or a :class:`Rejection` explaining the refusal.
        """
        ledger = self.ledger(tenant)
        budget = ledger.policy.query_budget
        if budget is not None and ledger.budget_used >= budget:
            ledger.rejected += 1
            counter("serving.rejected", tenant=tenant,
                    reason="tenant_budget").inc()
            return Rejection("tenant_budget", None)
        if ledger.bucket is not None:
            retry_after = ledger.bucket.try_take(now_s)
            if retry_after > 0.0:
                ledger.rejected += 1
                counter("serving.rejected", tenant=tenant,
                        reason="rate_limited").inc()
                return Rejection("rate_limited", retry_after)
        ledger.admitted += 1
        return None

    def mark_served(self, tenant: str) -> None:
        ledger = self.ledger(tenant)
        ledger.served += 1
        counter("serving.served", tenant=tenant).inc()

    def refund(self, tenant: str) -> None:
        """Hand an admitted-but-unserved request's slot back (shed,
        outage, budget): the tenant's budget and conservation ledger
        treat it as never sent."""
        ledger = self.ledger(tenant)
        ledger.refunded += 1
        counter("serving.tenant_refunds", tenant=tenant).inc()

    def served_by_tenant(self) -> dict[str, int]:
        """Per-tenant served counts (the oracle compares these)."""
        return {tenant: ledger.served
                for tenant, ledger in sorted(self.tenants.items())}


__all__ = ["AdmissionController", "Rejection", "TenantLedger", "TokenBucket"]
