"""The deterministic traffic front end over :class:`RetrievalService`.

This is the API surface the paper's attacker actually faces in
production: many tenants submit queries concurrently, an admission layer
rate-limits and budgets each of them, a bounded queue absorbs bursts,
and a micro-batching scheduler coalesces admitted queries into
``engine.retrieve_batch`` dispatches under a max-batch-size /
max-wait-time policy.

Everything runs on a :class:`~repro.serving.clock.VirtualClock` driven
by an event loop, so a request timeline replays bit-identically: same
admission decisions, same batch boundaries, same latency histograms.
The scheduler's core contract — enforced by the
``serving.batched_vs_sequential`` qa oracle — is that batching is purely
a performance transform: retrieval lists, per-tenant served counts, and
the service's query ledger are identical to the same timeline replayed
one query at a time against the bare service
(:func:`replay_sequential`).

Failure semantics: a mid-batch :class:`~repro.errors.RetrievalUnavailable`
delivers the served prefix, fails exactly the interrupted request, and
*sheds* the rest of the batch and every queued request — with exact
refunds on both the service ledger (see
``RetrievalService.query_batch``) and the per-tenant ledgers, so the
qa budget-conservation invariant holds through an outage.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    QueryBudgetExceeded,
    RetrievalUnavailable,
    ServiceOverloaded,
)
from repro.hashindex.compaction import CompactionPolicy
from repro.obs import counter, gauge, histogram, span
from repro.retrieval.lists import RetrievalList
from repro.retrieval.service import RetrievalService
from repro.serving.admission import AdmissionController
from repro.serving.clock import VirtualClock
from repro.serving.config import PRIORITIES, ServingConfig
from repro.serving.events import GalleryEvent, apply_gallery_event
from repro.serving.pool import WorkerPool
from repro.serving.queue import BoundedQueue
from repro.video.types import Video

#: Virtual-latency histogram buckets (milliseconds to seconds).
LATENCY_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class Request:
    """One tenant query arriving at a virtual timestamp."""

    tenant: str
    video: Video
    arrival_s: float
    priority: str | None = None  # None → the tenant policy's default
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.priority is not None and self.priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass
class Response:
    """The front end's answer to one request."""

    request: Request
    status: str  # "ok" | "rejected" | "shed" | "unavailable" | "budget"
    result: RetrievalList | None = None
    reason: str | None = None
    error: Exception | None = None
    retry_after_s: float | None = None
    completed_s: float | None = None
    latency_s: float | None = None
    batch_size: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServingReport:
    """Everything one timeline replay produced."""

    responses: list[Response]
    served_by_tenant: dict[str, int]
    makespan_s: float
    batches: int
    dispatched: int
    workers: int = 1
    gallery_events: int = 0

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r.ok)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.responses if r.status == "rejected")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses if r.status == "shed")

    @property
    def shed_rate(self) -> float:
        total = len(self.responses)
        return (self.shed / total) if total else 0.0

    @property
    def throughput_qps(self) -> float:
        """Served queries per *virtual* second of makespan."""
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    def latencies(self, priority: str | None = None) -> list[float]:
        return [
            r.latency_s for r in self.responses
            if r.ok and (priority is None
                         or (r.request.priority or "interactive") == priority)
        ]

    def latency_percentile(self, q: float,
                           priority: str | None = None) -> float:
        values = self.latencies(priority)
        return float(np.percentile(values, q)) if values else float("nan")

    def mean_batch_size(self) -> float:
        return self.dispatched / self.batches if self.batches else 0.0


class ServingFrontend:
    """Micro-batching scheduler + admission control over one service.

    A front end is stateless between :meth:`run` calls: each call builds
    a fresh clock, queue, and admission ledger, so the same timeline
    always produces the same report.
    """

    def __init__(self, service: RetrievalService,
                 config: ServingConfig | None = None) -> None:
        self.service = service
        self.config = config if config is not None else ServingConfig()

    # -------------------------------------------------------------- #
    # Event loop
    # -------------------------------------------------------------- #
    def run(self, items: "list[Request | GalleryEvent]") -> ServingReport:
        """Replay a timeline through the scheduler.

        ``items`` may mix :class:`Request`s with
        :class:`~repro.serving.events.GalleryEvent` mutations.  A pure
        request timeline on a single-worker, churn-free config runs the
        original single-server loop unchanged (bit-identical schedules);
        anything else — ``config.workers > 1``, ``config.churn``, or any
        gallery event in the timeline — routes to the pooled scheduler.
        """
        requests = [item for item in items
                    if not isinstance(item, GalleryEvent)]
        events = [item for item in items if isinstance(item, GalleryEvent)]
        if not events and self.config.workers == 1 and not self.config.churn:
            return self._run_legacy(requests)
        return self._run_pooled(requests, events)

    def _run_legacy(self, requests: list[Request]) -> ServingReport:
        """The original single-server scheduler (static galleries)."""
        config = self.config
        clock = VirtualClock()
        queue = BoundedQueue(config.queue_capacity, config.shed_policy)
        admission = AdmissionController(config)
        arrivals = sorted(enumerate(requests),
                          key=lambda pair: pair[1].arrival_s)
        responses: dict[int, Response] = {}
        state = _RunState(clock=clock, queue=queue, admission=admission,
                          responses=responses)

        with span("serving.run", requests=len(requests)):
            cursor = 0
            while cursor < len(arrivals) or len(queue):
                if not len(queue):
                    if cursor >= len(arrivals):
                        break
                    self._admit(state, *arrivals[cursor])
                    cursor += 1
                    continue
                if len(queue) >= config.max_batch_size or \
                        cursor >= len(arrivals):
                    ready_s = clock.now_s
                else:
                    ready_s = queue.oldest_enqueued_s + config.max_wait_s
                dispatch_s = max(ready_s, state.free_at_s, clock.now_s)
                if cursor < len(arrivals) and \
                        arrivals[cursor][1].arrival_s <= dispatch_s:
                    self._admit(state, *arrivals[cursor])
                    cursor += 1
                    continue
                clock.advance_to(dispatch_s)
                self._dispatch(state)

        ordered = [responses[index] for index in range(len(requests))]
        makespan = max(
            [clock.now_s, state.free_at_s]
            + [r.completed_s for r in ordered if r.completed_s is not None])
        return ServingReport(
            responses=ordered,
            served_by_tenant=admission.served_by_tenant(),
            makespan_s=makespan,
            batches=state.batches,
            dispatched=state.dispatched,
        )

    # -------------------------------------------------------------- #
    # Pooled event loop (worker pool + live gallery churn)
    # -------------------------------------------------------------- #
    def _effective_workers(self, events: list) -> int:
        """The worker count after safety fallbacks.

        Three situations force single-worker execution (the inline pool,
        so everything stays on the loop thread):

        * an installed fault plan — fault clocks and breaker state are
          scatter-order-dependent and not thread-safe;
        * an instance-level ``service.query`` override — instrumented
          services route through the override per video, which touches
          service counters and must not run concurrently;
        * gallery events on a compressed index tier — binary/IVF-PQ
          indexes are not hardened for appends concurrent with reads
          (the exact tier's grow-only matrix cache is).
        """
        workers = self.config.workers
        if workers == 1:
            return 1
        service, gallery = self.service, self.service.engine.gallery
        reason = None
        if getattr(gallery, "fault_plan", None) is not None:
            reason = "fault_plan"
        elif "query" in service.__dict__:
            reason = "query_override"
        elif events and gallery.index_tier != "exact":
            reason = "compressed_tier"
        if reason is None:
            return workers
        counter("serving.pool_fallbacks", reason=reason).inc()
        return 1

    def _run_pooled(self, requests: list[Request],
                    events: list[GalleryEvent]) -> ServingReport:
        """Scheduler with per-worker virtual clocks and gallery events.

        Determinism contract: admission, snapshot pinning, and gallery
        mutation all happen on the loop thread at *arrival* virtual
        times (events before requests on ties — the canonical
        :func:`~repro.serving.events.merge_timeline` order); service
        accounting happens at dispatch in dispatch order; workers run
        only pure compute on pinned snapshots; completions settle in
        virtual-time order.  Worker count therefore changes wall-clock
        throughput and virtual latencies, never statuses, rankings, or
        ledgers — enforced by the ``serving.pooled_vs_single`` and
        ``serving.mutating_timeline`` oracles.
        """
        config = self.config
        service = self.service
        engine = service.engine
        churn = bool(events) or config.churn
        workers = self._effective_workers(events)
        if churn:
            engine.enable_churn()
        policy = CompactionPolicy(config.compact_dead_fraction,
                                  config.compact_min_dead)

        clock = VirtualClock()
        queue = BoundedQueue(config.queue_capacity, config.shed_policy)
        admission = AdmissionController(config)
        responses: dict[int, Response] = {}
        state = _RunState(clock=clock, queue=queue, admission=admission,
                          responses=responses)
        #: request index → pinned GallerySnapshot (churn mode only).
        snapshots: dict[int, object] = {}

        # Canonical merged arrival order: time, then events before
        # requests, then original order (same key as merge_timeline).
        arrivals = [(event.arrival_s, 0, order, None, event)
                    for order, event in enumerate(events)]
        arrivals += [(request.arrival_s, 1, order, order, request)
                     for order, request in enumerate(requests)]
        arrivals.sort(key=lambda entry: entry[:3])

        inflight: list[tuple[float, int, _Flight]] = []
        seq = 0
        applied = 0

        # Pin the extractor in eval for the whole run: embed_videos
        # flips train→eval→train per call, and with workers > 1 one
        # thread's restore would put another thread's in-flight forward
        # into training-mode batchnorm (batch-statistic normalization).
        was_training = workers > 1 and engine.extractor.training
        if was_training:
            engine.extractor.eval()
        try:
            with span("serving.run", requests=len(requests),
                      events=len(events)), WorkerPool(workers) as pool:
                cursor = 0
                while cursor < len(arrivals) or len(queue) or inflight:
                    next_done = inflight[0][0] if inflight else None
                    next_arrival = arrivals[cursor][0] \
                        if cursor < len(arrivals) else None
                    dispatch_s = None
                    if len(queue):
                        if len(queue) >= config.max_batch_size or \
                                cursor >= len(arrivals):
                            ready_s = clock.now_s
                        else:
                            ready_s = queue.oldest_enqueued_s + \
                                config.max_wait_s
                        dispatch_s = max(ready_s, pool.min_free_s,
                                         clock.now_s)
                    # Earliest action wins; ties settle < arrival <
                    # dispatch (a completion frees its worker before new
                    # work lands).
                    candidates = []
                    if next_done is not None:
                        candidates.append((max(next_done, clock.now_s), 0))
                    if next_arrival is not None:
                        candidates.append((max(next_arrival, clock.now_s), 1))
                    if dispatch_s is not None:
                        candidates.append((dispatch_s, 2))
                    when, action = min(candidates)
                    clock.advance_to(when)
                    if action == 0:
                        done_s, _, flight = heapq.heappop(inflight)
                        self._settle_flight(state, flight, done_s)
                    elif action == 1:
                        _, kind, _, index, item = arrivals[cursor]
                        cursor += 1
                        if kind == 0:
                            apply_gallery_event(engine, item, policy)
                            applied += 1
                        else:
                            self._admit(state, index, item)
                            if churn and index not in responses:
                                snapshots[index] = engine.gallery.snapshot()
                    else:
                        seq = self._dispatch_pooled(state, pool, inflight,
                                                    seq, snapshots, churn)
        finally:
            if was_training:
                engine.extractor.train()

        ordered = [responses[index] for index in range(len(requests))]
        makespan = max(
            [clock.now_s] + list(pool.free_at_s)
            + [r.completed_s for r in ordered if r.completed_s is not None]
            + [event.arrival_s for event in events])
        return ServingReport(
            responses=ordered,
            served_by_tenant=admission.served_by_tenant(),
            makespan_s=makespan,
            batches=state.batches,
            dispatched=state.dispatched,
            workers=pool.workers,
            gallery_events=applied,
        )

    def _dispatch_pooled(self, state: "_RunState", pool: WorkerPool,
                         inflight: list, seq: int, snapshots: dict,
                         churn: bool) -> int:
        """Pop a batch, account it on the loop thread, hand compute to a
        worker, and book the completion on the virtual timeline."""
        config, clock = self.config, state.clock
        entries = state.queue.pop_batch(config.max_batch_size)
        gauge("serving.queue_depth").set(len(state.queue))
        batch = [item for item, _ in entries]

        # Global-budget pre-split, identical to the legacy scheduler.
        budget = self.service.query_budget
        room = len(batch) if budget is None else \
            max(0, budget - self.service.query_count)
        for index, request in batch[room:]:
            state.admission.refund(request.tenant)
            counter("serving.rejected", tenant=request.tenant,
                    reason="global_budget").inc()
            state.responses[index] = Response(
                request, "budget", reason="global_budget",
                error=QueryBudgetExceeded("service query budget exhausted"),
                completed_s=clock.now_s)
        batch = batch[:room]
        if not batch:
            return seq

        cost_s = config.service_base_s + \
            config.service_per_item_s * len(batch)
        worker = pool.pick_worker()
        done_s = pool.occupy(worker, clock.now_s, cost_s)
        state.batches += 1
        state.dispatched += len(batch)
        counter("serving.pool_dispatches").inc()
        histogram("serving.batch_size",
                  buckets=(1, 2, 4, 8, 16, 32, 64)).observe(len(batch))

        videos = [request.video for _, request in batch]
        if "query" in self.service.__dict__:
            # Instrumented service: route through query_batch, which
            # falls back to the per-video override (accounting inside).
            # _effective_workers already forced the inline pool.
            future = pool.submit(self.service.query_batch, videos)
            preaccounted = False
        else:
            pinned = [snapshots.get(index) for index, _ in batch] \
                if churn else None
            prepared = self.service.begin_batch(videos)
            # Fuse arenas are reused buffers — not safe across threads.
            fuse_override = False if pool.workers > 1 else None
            future = pool.submit(self.service.compute_batch, prepared,
                                 None, pinned, fuse_override)
            preaccounted = True
        heapq.heappush(inflight,
                       (done_s, seq, _Flight(batch, future, preaccounted)))
        return seq + 1

    def _settle_flight(self, state: "_RunState", flight: "_Flight",
                       done_s: float) -> None:
        """Deliver one completed batch at its virtual completion time."""
        batch = flight.batch
        try:
            results = flight.future.result()
        except RetrievalUnavailable as exc:
            if flight.preaccounted:
                self.service.settle_interrupted(
                    len(batch), int(getattr(exc, "served_count", 0)))
            self._settle_outage(state, batch, exc, done_s)
            return
        for (index, request), result in zip(batch, results):
            self._deliver(state, index, request, result, done_s, len(batch))

    # -------------------------------------------------------------- #
    # Arrival handling
    # -------------------------------------------------------------- #
    def _admit(self, state: "_RunState", index: int,
               request: Request) -> None:
        clock, queue, admission = state.clock, state.queue, state.admission
        clock.advance_to(max(clock.now_s, request.arrival_s))
        now = clock.now_s
        tenant = request.tenant
        counter("serving.requests", tenant=tenant).inc()
        rejection = admission.admit(tenant, now)
        if rejection is not None:
            error = ServiceOverloaded(
                f"tenant {tenant!r} {rejection.reason}",
                retry_after_s=rejection.retry_after_s) \
                if rejection.reason != "tenant_budget" else \
                QueryBudgetExceeded(f"tenant {tenant!r} budget exhausted")
            state.responses[index] = Response(
                request, "rejected", reason=rejection.reason, error=error,
                retry_after_s=rejection.retry_after_s, completed_s=now)
            return
        priority = request.priority or admission.ledger(tenant).policy.priority
        try:
            evicted = queue.push((index, request), priority, now)
        except OverflowError:
            admission.refund(tenant)
            retry_after = max(state.free_at_s - now, 0.0) + self.config.max_wait_s
            counter("serving.rejected", tenant=tenant,
                    reason="queue_full").inc()
            state.responses[index] = Response(
                request, "rejected", reason="queue_full",
                error=ServiceOverloaded("admission queue full",
                                        retry_after_s=retry_after),
                retry_after_s=retry_after, completed_s=now)
            return
        if evicted is not None:
            shed_index, shed_request = evicted
            self._shed(state, shed_index, shed_request, "priority_eviction")
        gauge("serving.queue_depth").set(len(queue))

    def _shed(self, state: "_RunState", index: int, request: Request,
              reason: str) -> None:
        """Drop an admitted-but-unserved request, refunding its tenant."""
        state.admission.refund(request.tenant)
        counter("serving.shed", reason=reason).inc()
        retry_after = self.config.max_wait_s
        state.responses[index] = Response(
            request, "shed", reason=reason,
            error=ServiceOverloaded(f"request shed ({reason})",
                                    retry_after_s=retry_after),
            retry_after_s=retry_after, completed_s=state.clock.now_s)

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def _dispatch(self, state: "_RunState") -> None:
        config, clock = self.config, state.clock
        entries = state.queue.pop_batch(config.max_batch_size)
        gauge("serving.queue_depth").set(len(state.queue))
        batch = [item for item, _ in entries]

        # Global-budget pre-split: a sequential loop would have each
        # over-budget query raise QueryBudgetExceeded *before* issuing
        # it, so those requests never reach the service at all.
        budget = self.service.query_budget
        room = len(batch) if budget is None else \
            max(0, budget - self.service.query_count)
        for index, request in batch[room:]:
            state.admission.refund(request.tenant)
            counter("serving.rejected", tenant=request.tenant,
                    reason="global_budget").inc()
            state.responses[index] = Response(
                request, "budget", reason="global_budget",
                error=QueryBudgetExceeded("service query budget exhausted"),
                completed_s=clock.now_s)
        batch = batch[:room]
        if not batch:
            return

        cost_s = config.service_base_s + \
            config.service_per_item_s * len(batch)
        done_s = clock.now_s + cost_s
        state.free_at_s = done_s
        state.batches += 1
        state.dispatched += len(batch)
        histogram("serving.batch_size",
                  buckets=(1, 2, 4, 8, 16, 32, 64)).observe(len(batch))
        try:
            results = self.service.query_batch(
                [request.video for _, request in batch])
        except RetrievalUnavailable as exc:
            self._settle_outage(state, batch, exc, done_s)
            return
        for (index, request), result in zip(batch, results):
            self._deliver(state, index, request, result, done_s, len(batch))

    def _deliver(self, state: "_RunState", index: int, request: Request,
                 result: RetrievalList, done_s: float,
                 batch_size: int) -> None:
        state.admission.mark_served(request.tenant)
        latency = done_s - request.arrival_s
        priority = request.priority or \
            state.admission.ledger(request.tenant).policy.priority
        histogram("serving.latency_s", buckets=LATENCY_BUCKETS,
                  priority=priority).observe(latency)
        state.responses[index] = Response(
            request, "ok", result=result, completed_s=done_s,
            latency_s=latency, batch_size=batch_size)

    def _settle_outage(self, state: "_RunState",
                       batch: list[tuple[int, Request]],
                       exc: RetrievalUnavailable, done_s: float) -> None:
        """Deliver the served prefix, fail the interrupted request, and
        shed the suffix plus everything still queued.

        ``RetrievalService.query_batch`` has already settled the service
        ledger with sequential semantics (prefix charged, failing query
        refunded, suffix never issued); here the per-tenant ledgers and
        responses follow suit.
        """
        served = list(getattr(exc, "served", []) or [])
        for (index, request), result in zip(batch, served):
            self._deliver(state, index, request, result, done_s, len(batch))
        failing_index, failing_request = batch[len(served)]
        state.admission.refund(failing_request.tenant)
        counter("serving.unavailable", tenant=failing_request.tenant).inc()
        state.responses[failing_index] = Response(
            failing_request, "unavailable", reason="retrieval_unavailable",
            error=exc, completed_s=done_s)
        for index, request in batch[len(served) + 1:]:
            self._shed(state, index, request, "outage")
        for index, request in state.queue.drain():
            self._shed(state, index, request, "outage")
        gauge("serving.queue_depth").set(0)


@dataclass
class _Flight:
    """One dispatched batch whose compute is (virtually) in flight."""

    batch: list
    future: object
    preaccounted: bool


@dataclass
class _RunState:
    """Mutable per-run scheduler state (one :meth:`run` call)."""

    clock: VirtualClock
    queue: BoundedQueue
    admission: AdmissionController
    responses: dict[int, Response]
    free_at_s: float = 0.0
    batches: int = 0
    dispatched: int = 0


# ------------------------------------------------------------------ #
# The sequential reference
# ------------------------------------------------------------------ #
def replay_sequential(requests: list[Request], service: RetrievalService,
                      config: ServingConfig | None = None) -> ServingReport:
    """Replay a timeline one query at a time against a bare service.

    This is the oracle reference for :class:`ServingFrontend`: the same
    admission rules (token buckets and tenant budgets depend only on
    arrival times, so their decisions are batching-invariant), but every
    admitted request goes straight through ``service.query`` in arrival
    order with no queueing or coalescing.  Under a no-shed load the
    micro-batched front end must match it exactly — retrieval lists,
    per-tenant served counts, and the service's query ledger.
    """
    config = config if config is not None else ServingConfig()
    admission = AdmissionController(config)
    arrivals = sorted(enumerate(requests), key=lambda pair: pair[1].arrival_s)
    responses: dict[int, Response] = {}
    served = 0
    last_s = 0.0
    for index, request in arrivals:
        now = request.arrival_s
        last_s = max(last_s, now)
        counter("serving.requests", tenant=request.tenant).inc()
        rejection = admission.admit(request.tenant, now)
        if rejection is not None:
            responses[index] = Response(
                request, "rejected", reason=rejection.reason,
                retry_after_s=rejection.retry_after_s, completed_s=now)
            continue
        try:
            result = service.query(request.video)
        except QueryBudgetExceeded as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "budget",
                                        reason="global_budget", error=exc,
                                        completed_s=now)
            continue
        except RetrievalUnavailable as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "unavailable",
                                        reason="retrieval_unavailable",
                                        error=exc, completed_s=now)
            continue
        admission.mark_served(request.tenant)
        served += 1
        responses[index] = Response(request, "ok", result=result,
                                    completed_s=now, latency_s=0.0,
                                    batch_size=1)
    return ServingReport(
        responses=[responses[index] for index in range(len(requests))],
        served_by_tenant=admission.served_by_tenant(),
        makespan_s=last_s,
        batches=served,
        dispatched=served,
    )


__all__ = ["Request", "Response", "ServingFrontend", "ServingReport",
           "replay_sequential", "LATENCY_BUCKETS"]
