"""The deterministic traffic front end over :class:`RetrievalService`.

This is the API surface the paper's attacker actually faces in
production: many tenants submit queries concurrently, an admission layer
rate-limits and budgets each of them, a bounded queue absorbs bursts,
and a micro-batching scheduler coalesces admitted queries into
``engine.retrieve_batch`` dispatches under a max-batch-size /
max-wait-time policy.

Everything runs on a :class:`~repro.serving.clock.VirtualClock` driven
by an event loop, so a request timeline replays bit-identically: same
admission decisions, same batch boundaries, same latency histograms.
The scheduler's core contract — enforced by the
``serving.batched_vs_sequential`` qa oracle — is that batching is purely
a performance transform: retrieval lists, per-tenant served counts, and
the service's query ledger are identical to the same timeline replayed
one query at a time against the bare service
(:func:`replay_sequential`).

Failure semantics: a mid-batch :class:`~repro.errors.RetrievalUnavailable`
delivers the served prefix, fails exactly the interrupted request, and
*sheds* the rest of the batch and every queued request — with exact
refunds on both the service ledger (see
``RetrievalService.query_batch``) and the per-tenant ledgers, so the
qa budget-conservation invariant holds through an outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import (
    QueryBudgetExceeded,
    RetrievalUnavailable,
    ServiceOverloaded,
)
from repro.obs import counter, gauge, histogram, span
from repro.retrieval.lists import RetrievalList
from repro.retrieval.service import RetrievalService
from repro.serving.admission import AdmissionController
from repro.serving.clock import VirtualClock
from repro.serving.config import PRIORITIES, ServingConfig
from repro.serving.queue import BoundedQueue
from repro.video.types import Video

#: Virtual-latency histogram buckets (milliseconds to seconds).
LATENCY_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0)


@dataclass(frozen=True)
class Request:
    """One tenant query arriving at a virtual timestamp."""

    tenant: str
    video: Video
    arrival_s: float
    priority: str | None = None  # None → the tenant policy's default
    request_id: str = ""

    def __post_init__(self) -> None:
        if self.priority is not None and self.priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass
class Response:
    """The front end's answer to one request."""

    request: Request
    status: str  # "ok" | "rejected" | "shed" | "unavailable" | "budget"
    result: RetrievalList | None = None
    reason: str | None = None
    error: Exception | None = None
    retry_after_s: float | None = None
    completed_s: float | None = None
    latency_s: float | None = None
    batch_size: int = 0

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServingReport:
    """Everything one timeline replay produced."""

    responses: list[Response]
    served_by_tenant: dict[str, int]
    makespan_s: float
    batches: int
    dispatched: int

    @property
    def served(self) -> int:
        return sum(1 for r in self.responses if r.ok)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.responses if r.status == "rejected")

    @property
    def shed(self) -> int:
        return sum(1 for r in self.responses if r.status == "shed")

    @property
    def shed_rate(self) -> float:
        total = len(self.responses)
        return (self.shed / total) if total else 0.0

    @property
    def throughput_qps(self) -> float:
        """Served queries per *virtual* second of makespan."""
        return self.served / self.makespan_s if self.makespan_s > 0 else 0.0

    def latencies(self, priority: str | None = None) -> list[float]:
        return [
            r.latency_s for r in self.responses
            if r.ok and (priority is None
                         or (r.request.priority or "interactive") == priority)
        ]

    def latency_percentile(self, q: float,
                           priority: str | None = None) -> float:
        values = self.latencies(priority)
        return float(np.percentile(values, q)) if values else float("nan")

    def mean_batch_size(self) -> float:
        return self.dispatched / self.batches if self.batches else 0.0


class ServingFrontend:
    """Micro-batching scheduler + admission control over one service.

    A front end is stateless between :meth:`run` calls: each call builds
    a fresh clock, queue, and admission ledger, so the same timeline
    always produces the same report.
    """

    def __init__(self, service: RetrievalService,
                 config: ServingConfig | None = None) -> None:
        self.service = service
        self.config = config if config is not None else ServingConfig()

    # -------------------------------------------------------------- #
    # Event loop
    # -------------------------------------------------------------- #
    def run(self, requests: list[Request]) -> ServingReport:
        """Replay a request timeline through the scheduler."""
        config = self.config
        clock = VirtualClock()
        queue = BoundedQueue(config.queue_capacity, config.shed_policy)
        admission = AdmissionController(config)
        arrivals = sorted(enumerate(requests),
                          key=lambda pair: pair[1].arrival_s)
        responses: dict[int, Response] = {}
        state = _RunState(clock=clock, queue=queue, admission=admission,
                          responses=responses)

        with span("serving.run", requests=len(requests)):
            cursor = 0
            while cursor < len(arrivals) or len(queue):
                if not len(queue):
                    if cursor >= len(arrivals):
                        break
                    self._admit(state, *arrivals[cursor])
                    cursor += 1
                    continue
                if len(queue) >= config.max_batch_size or \
                        cursor >= len(arrivals):
                    ready_s = clock.now_s
                else:
                    ready_s = queue.oldest_enqueued_s + config.max_wait_s
                dispatch_s = max(ready_s, state.free_at_s, clock.now_s)
                if cursor < len(arrivals) and \
                        arrivals[cursor][1].arrival_s <= dispatch_s:
                    self._admit(state, *arrivals[cursor])
                    cursor += 1
                    continue
                clock.advance_to(dispatch_s)
                self._dispatch(state)

        ordered = [responses[index] for index in range(len(requests))]
        makespan = max(
            [clock.now_s, state.free_at_s]
            + [r.completed_s for r in ordered if r.completed_s is not None])
        return ServingReport(
            responses=ordered,
            served_by_tenant=admission.served_by_tenant(),
            makespan_s=makespan,
            batches=state.batches,
            dispatched=state.dispatched,
        )

    # -------------------------------------------------------------- #
    # Arrival handling
    # -------------------------------------------------------------- #
    def _admit(self, state: "_RunState", index: int,
               request: Request) -> None:
        clock, queue, admission = state.clock, state.queue, state.admission
        clock.advance_to(max(clock.now_s, request.arrival_s))
        now = clock.now_s
        tenant = request.tenant
        counter("serving.requests", tenant=tenant).inc()
        rejection = admission.admit(tenant, now)
        if rejection is not None:
            error = ServiceOverloaded(
                f"tenant {tenant!r} {rejection.reason}",
                retry_after_s=rejection.retry_after_s) \
                if rejection.reason != "tenant_budget" else \
                QueryBudgetExceeded(f"tenant {tenant!r} budget exhausted")
            state.responses[index] = Response(
                request, "rejected", reason=rejection.reason, error=error,
                retry_after_s=rejection.retry_after_s, completed_s=now)
            return
        priority = request.priority or admission.ledger(tenant).policy.priority
        try:
            evicted = queue.push((index, request), priority, now)
        except OverflowError:
            admission.refund(tenant)
            retry_after = max(state.free_at_s - now, 0.0) + self.config.max_wait_s
            counter("serving.rejected", tenant=tenant,
                    reason="queue_full").inc()
            state.responses[index] = Response(
                request, "rejected", reason="queue_full",
                error=ServiceOverloaded("admission queue full",
                                        retry_after_s=retry_after),
                retry_after_s=retry_after, completed_s=now)
            return
        if evicted is not None:
            shed_index, shed_request = evicted
            self._shed(state, shed_index, shed_request, "priority_eviction")
        gauge("serving.queue_depth").set(len(queue))

    def _shed(self, state: "_RunState", index: int, request: Request,
              reason: str) -> None:
        """Drop an admitted-but-unserved request, refunding its tenant."""
        state.admission.refund(request.tenant)
        counter("serving.shed", reason=reason).inc()
        retry_after = self.config.max_wait_s
        state.responses[index] = Response(
            request, "shed", reason=reason,
            error=ServiceOverloaded(f"request shed ({reason})",
                                    retry_after_s=retry_after),
            retry_after_s=retry_after, completed_s=state.clock.now_s)

    # -------------------------------------------------------------- #
    # Dispatch
    # -------------------------------------------------------------- #
    def _dispatch(self, state: "_RunState") -> None:
        config, clock = self.config, state.clock
        entries = state.queue.pop_batch(config.max_batch_size)
        gauge("serving.queue_depth").set(len(state.queue))
        batch = [item for item, _ in entries]

        # Global-budget pre-split: a sequential loop would have each
        # over-budget query raise QueryBudgetExceeded *before* issuing
        # it, so those requests never reach the service at all.
        budget = self.service.query_budget
        room = len(batch) if budget is None else \
            max(0, budget - self.service.query_count)
        for index, request in batch[room:]:
            state.admission.refund(request.tenant)
            counter("serving.rejected", tenant=request.tenant,
                    reason="global_budget").inc()
            state.responses[index] = Response(
                request, "budget", reason="global_budget",
                error=QueryBudgetExceeded("service query budget exhausted"),
                completed_s=clock.now_s)
        batch = batch[:room]
        if not batch:
            return

        cost_s = config.service_base_s + \
            config.service_per_item_s * len(batch)
        done_s = clock.now_s + cost_s
        state.free_at_s = done_s
        state.batches += 1
        state.dispatched += len(batch)
        histogram("serving.batch_size",
                  buckets=(1, 2, 4, 8, 16, 32, 64)).observe(len(batch))
        try:
            results = self.service.query_batch(
                [request.video for _, request in batch])
        except RetrievalUnavailable as exc:
            self._settle_outage(state, batch, exc, done_s)
            return
        for (index, request), result in zip(batch, results):
            self._deliver(state, index, request, result, done_s, len(batch))

    def _deliver(self, state: "_RunState", index: int, request: Request,
                 result: RetrievalList, done_s: float,
                 batch_size: int) -> None:
        state.admission.mark_served(request.tenant)
        latency = done_s - request.arrival_s
        priority = request.priority or \
            state.admission.ledger(request.tenant).policy.priority
        histogram("serving.latency_s", buckets=LATENCY_BUCKETS,
                  priority=priority).observe(latency)
        state.responses[index] = Response(
            request, "ok", result=result, completed_s=done_s,
            latency_s=latency, batch_size=batch_size)

    def _settle_outage(self, state: "_RunState",
                       batch: list[tuple[int, Request]],
                       exc: RetrievalUnavailable, done_s: float) -> None:
        """Deliver the served prefix, fail the interrupted request, and
        shed the suffix plus everything still queued.

        ``RetrievalService.query_batch`` has already settled the service
        ledger with sequential semantics (prefix charged, failing query
        refunded, suffix never issued); here the per-tenant ledgers and
        responses follow suit.
        """
        served = list(getattr(exc, "served", []) or [])
        for (index, request), result in zip(batch, served):
            self._deliver(state, index, request, result, done_s, len(batch))
        failing_index, failing_request = batch[len(served)]
        state.admission.refund(failing_request.tenant)
        counter("serving.unavailable", tenant=failing_request.tenant).inc()
        state.responses[failing_index] = Response(
            failing_request, "unavailable", reason="retrieval_unavailable",
            error=exc, completed_s=done_s)
        for index, request in batch[len(served) + 1:]:
            self._shed(state, index, request, "outage")
        for index, request in state.queue.drain():
            self._shed(state, index, request, "outage")
        gauge("serving.queue_depth").set(0)


@dataclass
class _RunState:
    """Mutable per-run scheduler state (one :meth:`run` call)."""

    clock: VirtualClock
    queue: BoundedQueue
    admission: AdmissionController
    responses: dict[int, Response]
    free_at_s: float = 0.0
    batches: int = 0
    dispatched: int = 0


# ------------------------------------------------------------------ #
# The sequential reference
# ------------------------------------------------------------------ #
def replay_sequential(requests: list[Request], service: RetrievalService,
                      config: ServingConfig | None = None) -> ServingReport:
    """Replay a timeline one query at a time against a bare service.

    This is the oracle reference for :class:`ServingFrontend`: the same
    admission rules (token buckets and tenant budgets depend only on
    arrival times, so their decisions are batching-invariant), but every
    admitted request goes straight through ``service.query`` in arrival
    order with no queueing or coalescing.  Under a no-shed load the
    micro-batched front end must match it exactly — retrieval lists,
    per-tenant served counts, and the service's query ledger.
    """
    config = config if config is not None else ServingConfig()
    admission = AdmissionController(config)
    arrivals = sorted(enumerate(requests), key=lambda pair: pair[1].arrival_s)
    responses: dict[int, Response] = {}
    served = 0
    last_s = 0.0
    for index, request in arrivals:
        now = request.arrival_s
        last_s = max(last_s, now)
        counter("serving.requests", tenant=request.tenant).inc()
        rejection = admission.admit(request.tenant, now)
        if rejection is not None:
            responses[index] = Response(
                request, "rejected", reason=rejection.reason,
                retry_after_s=rejection.retry_after_s, completed_s=now)
            continue
        try:
            result = service.query(request.video)
        except QueryBudgetExceeded as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "budget",
                                        reason="global_budget", error=exc,
                                        completed_s=now)
            continue
        except RetrievalUnavailable as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "unavailable",
                                        reason="retrieval_unavailable",
                                        error=exc, completed_s=now)
            continue
        admission.mark_served(request.tenant)
        served += 1
        responses[index] = Response(request, "ok", result=result,
                                    completed_s=now, latency_s=0.0,
                                    batch_size=1)
    return ServingReport(
        responses=[responses[index] for index in range(len(requests))],
        served_by_tenant=admission.served_by_tenant(),
        makespan_s=last_s,
        batches=served,
        dispatched=served,
    )


__all__ = ["Request", "Response", "ServingFrontend", "ServingReport",
           "replay_sequential", "LATENCY_BUCKETS"]
