"""Virtual time for the serving front end.

The scheduler never reads the wall clock: every timestamp — arrivals,
micro-batch deadlines, token-bucket refills, batch service times — lives
on a :class:`VirtualClock` that only moves when the event loop advances
it.  Two runs over the same request timeline therefore produce the same
dispatch schedule, the same admission decisions, and the same latency
histograms, bit for bit (the same discipline as
:class:`~repro.resilience.FaultPlan`'s logical query clock).
"""

from __future__ import annotations


class VirtualClock:
    """A monotonic, manually-advanced clock in (virtual) seconds."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        return self._now_s

    def advance_to(self, t_s: float) -> float:
        """Move time forward to ``t_s`` (never backwards)."""
        t_s = float(t_s)
        if t_s < self._now_s:
            raise ValueError(
                f"virtual clock cannot rewind: now={self._now_s}, "
                f"requested {t_s}")
        self._now_s = t_s
        return self._now_s

    def advance_by(self, delta_s: float) -> float:
        """Move time forward by ``delta_s`` seconds."""
        if delta_s < 0:
            raise ValueError("virtual clock cannot rewind")
        self._now_s += float(delta_s)
        return self._now_s


__all__ = ["VirtualClock"]
