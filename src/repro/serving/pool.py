"""Worker-pool executor behind the micro-batching front end.

:class:`WorkerPool` owns the *real* threads; the event loop owns all
the semantics.  The split is strict:

* the event loop admits requests, pins gallery snapshots, runs
  accounting (``service.begin_batch``) in arrival order, picks the
  worker (earliest virtual ``free_at``, lowest index on ties), and
  settles completions in virtual-time order;
* workers run only the pure compute (``service.compute_batch``:
  embedding forward + snapshot-pinned gallery search), which releases
  the GIL inside the BLAS kernels, so pooled throughput scales with
  worker count on real hardware while virtual-clock scheduling stays
  deterministic.

``workers=1`` degenerates to an inline executor (no threads, eager
evaluation), which keeps single-worker runs byte-identical to the
legacy scheduler and cheap to construct.

While a multi-worker pool is open, :func:`repro.obs.thread_safe_metrics`
is active so counters incremented from worker threads cannot lose
updates.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor

from repro.obs import gauge, thread_safe_metrics


class _Immediate:
    """Future-alike that ran its callable eagerly on the caller's thread."""

    __slots__ = ("_value", "_error")

    def __init__(self, fn, args) -> None:
        try:
            self._value = fn(*args)
            self._error = None
        except BaseException as exc:  # re-raised at result()
            self._value = None
            self._error = exc

    def result(self):
        if self._error is not None:
            raise self._error
        return self._value


class WorkerPool:
    """Fixed-size compute pool with per-worker virtual clocks.

    Use as a context manager around one scheduler run; exiting shuts
    the threads down and tears down the metrics lock.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self._executor: ThreadPoolExecutor | None = None
        self._metrics_guard: thread_safe_metrics | None = None
        #: Virtual time at which each worker becomes free.
        self.free_at_s = [0.0] * self.workers
        #: Virtual busy time accumulated per worker (utilization gauges).
        self.busy_s = [0.0] * self.workers

    def __enter__(self) -> "WorkerPool":
        if self.workers > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-serving")
            self._metrics_guard = thread_safe_metrics()
            self._metrics_guard.__enter__()
        gauge("serving.pool_workers").set(self.workers)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._metrics_guard is not None:
            self._metrics_guard.__exit__(*exc_info)
            self._metrics_guard = None
        for position, busy in enumerate(self.busy_s):
            gauge("serving.worker_busy_s", worker=str(position)).set(busy)

    # -------------------------------------------------------------- #
    # Scheduling
    # -------------------------------------------------------------- #
    @property
    def min_free_s(self) -> float:
        return min(self.free_at_s)

    def pick_worker(self) -> int:
        """Earliest-free worker, lowest index on ties (deterministic)."""
        best = 0
        for position in range(1, self.workers):
            if self.free_at_s[position] < self.free_at_s[best]:
                best = position
        return best

    def occupy(self, worker: int, start_s: float, cost_s: float) -> float:
        """Book ``cost_s`` of virtual time on ``worker``; returns done_s."""
        done_s = max(start_s, self.free_at_s[worker]) + cost_s
        self.free_at_s[worker] = done_s
        self.busy_s[worker] += cost_s
        return done_s

    def submit(self, fn, *args) -> "Future | _Immediate":
        """Run ``fn(*args)`` on a worker (or inline when ``workers==1``)."""
        if self._executor is None:
            return _Immediate(fn, args)
        return self._executor.submit(fn, *args)


__all__ = ["WorkerPool"]
