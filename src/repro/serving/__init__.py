"""repro.serving — deterministic traffic front end for retrieval.

The layer between tenants and :class:`~repro.retrieval.service.RetrievalService`:
a virtual-clock event-loop scheduler that coalesces concurrent queries
into micro-batches, per-tenant admission control (token-bucket rate
limits and query budgets under the service's global budget), and a
bounded queue with priority-aware load shedding.  Batching is provably
cosmetic — the ``serving.batched_vs_sequential`` qa oracle replays every
timeline sequentially and demands identical retrieval lists and ledgers.

>>> from repro.serving import ServingFrontend, ServingConfig, Request
>>> frontend = ServingFrontend(service, ServingConfig(max_batch_size=8))
>>> report = frontend.run(requests)
>>> report.throughput_qps, report.latency_percentile(99)
"""

from repro.serving.admission import (
    AdmissionController,
    Rejection,
    TenantLedger,
    TokenBucket,
)
from repro.serving.clock import VirtualClock
from repro.serving.config import (
    PRIORITIES,
    ServingConfig,
    TenantPolicy,
    default_batch_size,
    default_churn,
    default_workers,
)
from repro.serving.events import (
    AddVideo,
    DeleteVideo,
    GalleryEvent,
    ReembedVideo,
    generate_churn,
    merge_timeline,
    replay_sequential_mutating,
)
from repro.serving.frontend import (
    Request,
    Response,
    ServingFrontend,
    ServingReport,
    replay_sequential,
)
from repro.serving.pool import WorkerPool
from repro.serving.queue import BoundedQueue
from repro.serving.workload import (
    TenantSpec,
    closed_spaced_timeline,
    generate_timeline,
)

__all__ = [
    "AddVideo",
    "AdmissionController",
    "BoundedQueue",
    "DeleteVideo",
    "GalleryEvent",
    "PRIORITIES",
    "ReembedVideo",
    "Rejection",
    "Request",
    "Response",
    "ServingConfig",
    "ServingFrontend",
    "ServingReport",
    "TenantLedger",
    "TenantPolicy",
    "TenantSpec",
    "TokenBucket",
    "VirtualClock",
    "WorkerPool",
    "closed_spaced_timeline",
    "default_batch_size",
    "default_churn",
    "default_workers",
    "generate_churn",
    "generate_timeline",
    "merge_timeline",
    "replay_sequential",
    "replay_sequential_mutating",
]
