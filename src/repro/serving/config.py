"""Configuration for the serving front end.

Follows the frozen-dataclass pattern of
:class:`~repro.retrieval.config.ServiceConfig` /
:class:`~repro.resilience.ResilienceConfig`: one :class:`ServingConfig`
per front end, with nested per-tenant :class:`TenantPolicy` entries.

``REPRO_SERVING_BATCH`` overrides the default micro-batch size from the
environment (benchmarks use it to sweep batching without code changes);
an explicit ``max_batch_size`` passed in code always wins.  All flags
parse through :mod:`repro.utils.envflags`: invalid values raise instead
of silently coercing to the default (``REPRO_SERVING_BATCH=abc`` used to
mean 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from types import MappingProxyType
from typing import Mapping

from repro.utils.envflags import env_bool, env_int, env_set

#: Priority classes, best first.  Interactive requests are dispatched
#: before bulk ones queued at the same time, and bulk is shed first.
PRIORITIES = ("interactive", "bulk")

#: Sentinel meaning "take the env/default batch size".
_ENV_BATCH = -1

#: Sentinel meaning "take the env/default worker count".
_ENV_WORKERS = -1

#: Sentinel meaning "take the env/default churn switch".
_ENV_CHURN = -1


def default_batch_size() -> int:
    """``REPRO_SERVING_BATCH`` when set, else routed/8.

    Unset (or empty) falls back to the active router's micro-batch
    decision — 8 unless a calibration profile says otherwise
    (see :mod:`repro.router`).  Invalid or ``< 1`` values raise.
    """
    if env_set("REPRO_SERVING_BATCH"):
        return env_int("REPRO_SERVING_BATCH", 8, minimum=1)
    from repro.router import active_router

    return int(active_router().decide(
        "serving_batch", "default",
        ("1", "2", "4", "8", "16", "32"), "8"))


def default_workers() -> int:
    """``REPRO_SERVING_WORKERS`` when set (and valid), else 1.

    Invalid or ``< 1`` values raise (``REPRO_SERVING_WORKERS=0`` used to
    silently mean 1).
    """
    return env_int("REPRO_SERVING_WORKERS", 1, minimum=1)


def default_churn() -> bool:
    """``REPRO_GALLERY_CHURN`` truthiness (default off).

    When on, the front end pins a gallery snapshot per admitted request
    even for pure-query timelines — useful when something outside the
    event loop mutates the gallery mid-run.  Non-boolean values raise.
    """
    return env_bool("REPRO_GALLERY_CHURN", False)


@dataclass(frozen=True)
class TenantPolicy:
    """Admission rules for one tenant (or the default for all others).

    Parameters
    ----------
    rate_per_s:
        Token-bucket refill rate in queries/second; ``None`` disables
        rate limiting for the tenant.
    burst:
        Token-bucket capacity — how many queries may arrive back-to-back
        before the rate limit bites.
    query_budget:
        Per-tenant cap on *served* queries, layered under the service's
        global budget.  Shed or failed requests hand their slot back.
    priority:
        Default priority class for the tenant's requests
        (``"interactive"`` or ``"bulk"``); a request may override it.
    """

    rate_per_s: float | None = None
    burst: int = 1
    query_budget: int | None = None
    priority: str = "interactive"

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive (or None)")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.query_budget is not None and self.query_budget < 0:
            raise ValueError("query_budget must be non-negative")
        if self.priority not in PRIORITIES:
            raise ValueError(f"priority must be one of {PRIORITIES}")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the traffic front end.

    Parameters
    ----------
    max_batch_size:
        Upper bound on queries coalesced into one
        ``engine.retrieve_batch`` dispatch.  ``1`` degenerates to a
        sequential front end (the oracle reference).  Defaults to
        ``REPRO_SERVING_BATCH`` (else 8).
    max_wait_s:
        Micro-batch deadline: a queued request is dispatched no later
        than this many virtual seconds after it was enqueued, even if
        the batch is not full.
    queue_capacity:
        Bound on the admission queue.  Arrivals beyond it are shed
        according to ``shed_policy``.
    shed_policy:
        ``"shed-bulk"`` (default): an interactive arrival may evict the
        youngest queued bulk request; otherwise — and always for bulk
        arrivals — the newcomer is rejected.  ``"reject-new"``: the
        queue never evicts; newcomers bounce.
    service_base_s / service_per_item_s:
        Linear virtual cost of one dispatched batch
        (``base + per_item * batch``).  This is what makes batching pay
        on the virtual clock: 8 coalesced queries cost one base instead
        of eight.
    workers:
        Worker-pool size for dispatched batches.  ``1`` (the default)
        is the single-server scheduler; ``> 1`` runs batch compute on a
        thread pool leaning on the GIL-releasing BLAS kernels, with
        per-worker virtual clocks.  Defaults to
        ``REPRO_SERVING_WORKERS`` (else 1).  Semantics-invisible — see
        the ``serving.pooled_vs_single`` oracle.
    churn:
        Force gallery-snapshot pinning per admitted request even for
        pure-query timelines (mutating timelines enable it on their
        own).  Defaults to ``REPRO_GALLERY_CHURN`` (else off).
    compact_dead_fraction / compact_min_dead:
        Background compaction policy for mutating timelines: a shard is
        rebuilt once its tombstones pass both thresholds.
    tenants:
        Per-tenant :class:`TenantPolicy` overrides by tenant id.
    default_tenant:
        Policy for tenants without an explicit entry.
    """

    max_batch_size: int = _ENV_BATCH
    max_wait_s: float = 0.002
    queue_capacity: int = 64
    shed_policy: str = "shed-bulk"
    service_base_s: float = 0.004
    service_per_item_s: float = 0.001
    workers: int = _ENV_WORKERS
    churn: bool | int = _ENV_CHURN
    compact_dead_fraction: float = 0.25
    compact_min_dead: int = 4
    tenants: Mapping[str, TenantPolicy] = field(default_factory=dict)
    default_tenant: TenantPolicy = field(default_factory=TenantPolicy)

    def __post_init__(self) -> None:
        if self.max_batch_size == _ENV_BATCH:
            object.__setattr__(self, "max_batch_size", default_batch_size())
        if self.workers == _ENV_WORKERS:
            object.__setattr__(self, "workers", default_workers())
        if self.churn == _ENV_CHURN:
            object.__setattr__(self, "churn", default_churn())
        object.__setattr__(self, "churn", bool(self.churn))
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if not (0.0 < self.compact_dead_fraction <= 1.0):
            raise ValueError("compact_dead_fraction must be in (0, 1]")
        if self.compact_min_dead < 1:
            raise ValueError("compact_min_dead must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.shed_policy not in ("shed-bulk", "reject-new"):
            raise ValueError("shed_policy must be 'shed-bulk' or 'reject-new'")
        if self.service_base_s < 0 or self.service_per_item_s < 0:
            raise ValueError("service-time model must be non-negative")
        # Freeze the mapping so a shared config cannot drift mid-run.
        object.__setattr__(self, "tenants",
                           MappingProxyType(dict(self.tenants)))

    def policy_for(self, tenant: str) -> TenantPolicy:
        """The effective :class:`TenantPolicy` for ``tenant``."""
        return self.tenants.get(tenant, self.default_tenant)

    def with_(self, **changes) -> "ServingConfig":
        """A copy with ``changes`` applied (dataclasses.replace sugar)."""
        return replace(self, **changes)


__all__ = ["ServingConfig", "TenantPolicy", "PRIORITIES",
           "default_batch_size", "default_workers", "default_churn"]
