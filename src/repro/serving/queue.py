"""Bounded admission queue with priority classes and load shedding.

Two priority classes (``interactive`` ahead of ``bulk``), FIFO within a
class, and a hard capacity.  When the queue is full the shed policy
decides who pays: ``"shed-bulk"`` lets an interactive arrival evict the
*youngest* queued bulk request (the one that has waited least loses
least), ``"reject-new"`` always bounces the newcomer.  Everything is
plain deterministic data structure work — no randomness, no wall clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.serving.config import PRIORITIES

_RANK = {name: rank for rank, name in enumerate(PRIORITIES)}


@dataclass(order=True)
class _Entry:
    rank: int
    seq: int
    item: Any = field(compare=False)
    enqueued_s: float = field(compare=False)


class BoundedQueue:
    """Priority FIFO with a capacity bound and bulk-shedding support."""

    def __init__(self, capacity: int, shed_policy: str = "shed-bulk") -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = int(capacity)
        self.shed_policy = shed_policy
        self._heap: list[_Entry] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.capacity

    def push(self, item: Any, priority: str, now_s: float) -> Any | None:
        """Enqueue ``item``; returns the *evicted* item if shedding made
        room, or raises :class:`OverflowError` when the newcomer must be
        rejected instead (the caller turns that into a 429)."""
        rank = _RANK[priority]
        evicted = None
        if self.full:
            if self.shed_policy == "shed-bulk" and rank == _RANK["interactive"]:
                evicted = self._evict_youngest_bulk()
            if evicted is None:
                raise OverflowError("queue full")
        heapq.heappush(self._heap, _Entry(rank, self._seq, item, float(now_s)))
        self._seq += 1
        return evicted

    def _evict_youngest_bulk(self) -> Any | None:
        bulk_rank = _RANK["bulk"]
        youngest = None
        for entry in self._heap:
            if entry.rank == bulk_rank and (
                    youngest is None or entry.seq > youngest.seq):
                youngest = entry
        if youngest is None:
            return None
        self._heap.remove(youngest)
        heapq.heapify(self._heap)
        return youngest.item

    def pop_batch(self, limit: int) -> list[tuple[Any, float]]:
        """Dequeue up to ``limit`` items in (priority, FIFO) order,
        returning ``(item, enqueued_s)`` pairs."""
        batch = []
        while self._heap and len(batch) < limit:
            entry = heapq.heappop(self._heap)
            batch.append((entry.item, entry.enqueued_s))
        return batch

    def drain(self) -> list[Any]:
        """Remove and return every queued item (outage shedding)."""
        items = [entry.item for entry in sorted(self._heap)]
        self._heap.clear()
        return items

    @property
    def oldest_enqueued_s(self) -> float:
        """Enqueue time of the oldest entry (min over the queue)."""
        return min(entry.enqueued_s for entry in self._heap)


__all__ = ["BoundedQueue"]
