"""Seeded multi-tenant request-timeline generators.

The benchmark, the demo, and the oracle tests all need the same thing: a
reproducible stream of :class:`~repro.serving.frontend.Request` objects
from several tenants with different arrival rates.  Arrivals are Poisson
per tenant (exponential inter-arrival times from one ``default_rng``
seed), so a ``(seed, specs, videos)`` triple pins the entire timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.frontend import Request
from repro.video.types import Video


@dataclass(frozen=True)
class TenantSpec:
    """How one tenant behaves in a generated workload.

    ``mean_rate_per_s`` is the Poisson arrival rate (queries per virtual
    second); ``count`` is how many requests the tenant submits in total.
    ``priority`` of ``None`` defers to the tenant's configured policy.
    """

    name: str
    mean_rate_per_s: float
    count: int
    priority: str | None = None

    def __post_init__(self) -> None:
        if self.mean_rate_per_s <= 0:
            raise ValueError("mean_rate_per_s must be positive")
        if self.count < 0:
            raise ValueError("count must be non-negative")


def generate_timeline(seed: int, specs: list[TenantSpec],
                      videos: list[Video]) -> list[Request]:
    """Interleave seeded Poisson arrival streams into one timeline.

    Each tenant draws exponential inter-arrival gaps and query videos
    (uniformly from ``videos``) from a child generator, so adding or
    reordering tenants never perturbs another tenant's stream.  The
    merged list is sorted by arrival time with tenant order as the
    deterministic tie-break.
    """
    if not videos:
        raise ValueError("generate_timeline needs at least one query video")
    requests: list[Request] = []
    root = np.random.SeedSequence(seed)
    for spec, child in zip(specs, root.spawn(len(specs))):
        rng = np.random.default_rng(child)
        gaps = rng.exponential(1.0 / spec.mean_rate_per_s, size=spec.count)
        arrivals = np.cumsum(gaps)
        picks = rng.integers(0, len(videos), size=spec.count)
        for i in range(spec.count):
            requests.append(Request(
                tenant=spec.name,
                video=videos[int(picks[i])],
                arrival_s=float(arrivals[i]),
                priority=spec.priority,
                request_id=f"{spec.name}-{i}",
            ))
    requests.sort(key=lambda r: (r.arrival_s, r.tenant, r.request_id))
    return requests


def closed_spaced_timeline(tenants: list[str], videos: list[Video],
                           per_tenant: int, gap_s: float) -> list[Request]:
    """A deterministic round-robin timeline with fixed spacing.

    No randomness at all: tenant ``t`` submits request ``k`` at
    ``(k * len(tenants) + index(t)) * gap_s``, cycling through
    ``videos``.  Handy for tests that want exact, hand-checkable
    arrival times.
    """
    if not videos:
        raise ValueError("closed_spaced_timeline needs at least one video")
    requests = []
    step = 0
    for k in range(per_tenant):
        for tenant in tenants:
            requests.append(Request(
                tenant=tenant,
                video=videos[step % len(videos)],
                arrival_s=step * gap_s,
                request_id=f"{tenant}-{k}",
            ))
            step += 1
    return requests


__all__ = ["TenantSpec", "generate_timeline", "closed_spaced_timeline"]
