"""Gallery mutation events for mutating serving timelines.

A mutating timeline interleaves tenant :class:`~repro.serving.frontend.Request`s
with owner-side gallery operations — :class:`AddVideo`,
:class:`DeleteVideo`, :class:`ReembedVideo` — each stamped with a
virtual arrival time.  The front end applies events on its event-loop
thread in arrival order and bumps the gallery version, so queries
admitted before an event keep their pinned snapshot while later ones
see the mutated gallery.

:func:`merge_timeline` defines the *canonical* interleaving (events
before queries at equal timestamps); both the pooled front end and the
sequential reference replay (:func:`replay_sequential_mutating`) use
it, so the ``serving.mutating_timeline`` oracle compares identical
orderings.  :func:`generate_churn` builds a seeded random event stream
against a known set of live gallery ids, tracking liveness while
generating so every delete/re-embed targets a live video.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryBudgetExceeded, RetrievalUnavailable
from repro.hashindex.compaction import CompactionPolicy
from repro.obs import counter
from repro.serving.admission import AdmissionController
from repro.serving.config import ServingConfig
from repro.video.types import Video


@dataclass(frozen=True)
class GalleryEvent:
    """Base class: one owner-side gallery mutation at a virtual time."""

    arrival_s: float

    def __post_init__(self) -> None:
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    def apply(self, engine) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class AddVideo(GalleryEvent):
    """Embed and insert a new video under traffic."""

    video: Video = None

    def apply(self, engine) -> None:
        engine.add_video(self.video)


@dataclass(frozen=True)
class DeleteVideo(GalleryEvent):
    """Tombstone a live gallery video."""

    video_id: str = ""

    def apply(self, engine) -> None:
        engine.remove_video(self.video_id)


@dataclass(frozen=True)
class ReembedVideo(GalleryEvent):
    """Re-embed a live gallery video (content changed upstream)."""

    video: Video = None

    def apply(self, engine) -> None:
        engine.reembed_video(self.video)


def apply_gallery_event(engine, event: GalleryEvent,
                        policy: CompactionPolicy | None = None) -> None:
    """Apply one event (plus the shared background-compaction check).

    The compaction check runs at exactly this point in *both* the
    pooled front end and the sequential reference, so compaction
    boundaries — which affect tie-breaking row order inside rebuilt
    indexes — are identical across replays.
    """
    event.apply(engine)
    counter("serving.gallery_events", kind=type(event).__name__).inc()
    if policy is not None:
        dropped = engine.gallery.maybe_compact(policy)
        if dropped:
            counter("serving.compactions").inc()
            counter("serving.compacted_rows").inc(dropped)


def merge_timeline(items: list) -> list:
    """Canonical ordering of a mixed request/event timeline.

    Stable sort by arrival time with events ordered before requests at
    equal timestamps (owner mutations win ties — the same convention a
    primary-replica store applies to a write racing a read).
    """
    events = [item for item in items if isinstance(item, GalleryEvent)]
    requests = [item for item in items if not isinstance(item, GalleryEvent)]
    keyed = [(event.arrival_s, 0, order, event)
             for order, event in enumerate(events)]
    keyed += [(request.arrival_s, 1, order, request)
              for order, request in enumerate(requests)]
    keyed.sort(key=lambda entry: entry[:3])
    return [item for _, _, _, item in keyed]


def generate_churn(seed: int, gallery_ids: list[str], *,
                   adds: int = 0, deletes: int = 0, reembeds: int = 0,
                   horizon_s: float = 1.0, start_s: float = 0.0,
                   frames: int = 8, height: int = 16, width: int = 16,
                   channels: int = 3,
                   label_base: int = 50) -> list[GalleryEvent]:
    """A seeded random mutation stream against known live ids.

    Deletes and re-embeds always target a video that is still live at
    their point in the stream (the generator tracks liveness), so the
    sequential replay never raises ``KeyError``.  Event times are
    uniform over ``[start_s, start_s + horizon_s)`` and the interleaving
    of event kinds is a seeded shuffle.
    """
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0xC4]))
    kinds = ["add"] * int(adds) + ["delete"] * int(deletes) + \
        ["reembed"] * int(reembeds)
    rng.shuffle(kinds)
    times = np.sort(rng.uniform(start_s, start_s + horizon_s,
                                size=len(kinds)))
    live = list(gallery_ids)
    events: list[GalleryEvent] = []
    fresh = 0
    for kind, when in zip(kinds, times):
        when = float(when)
        if kind == "add":
            fresh += 1
            video_id = f"churn-{seed}-{fresh}"
            pixels = rng.random((frames, height, width, channels))
            events.append(AddVideo(when, Video(
                pixels=pixels, label=label_base + fresh,
                video_id=video_id)))
            live.append(video_id)
        elif kind == "delete" and live:
            victim = live.pop(int(rng.integers(len(live))))
            events.append(DeleteVideo(when, victim))
        elif kind == "reembed" and live:
            victim = live[int(rng.integers(len(live)))]
            pixels = rng.random((frames, height, width, channels))
            events.append(ReembedVideo(when, Video(
                pixels=pixels, label=label_base, video_id=victim)))
        # A delete/reembed drawn against an exhausted live set is
        # silently skipped; callers control counts.
    return events


# ------------------------------------------------------------------ #
# The sequential mutating reference
# ------------------------------------------------------------------ #
def replay_sequential_mutating(items: list, service,
                               config: ServingConfig | None = None):
    """Replay a mixed request/event timeline one item at a time.

    The oracle reference for mutating timelines: events apply in the
    canonical order of :func:`merge_timeline`, each query runs against
    the gallery state current at its arrival, and accounting matches
    :func:`~repro.serving.frontend.replay_sequential` exactly.
    """
    # Imported here: frontend imports this module for event handling.
    from repro.serving.frontend import Request, Response, ServingReport

    config = config if config is not None else ServingConfig()
    policy = CompactionPolicy(config.compact_dead_fraction,
                              config.compact_min_dead)
    engine = service.engine
    engine.enable_churn()
    ordered = merge_timeline(items)
    requests = [item for item in ordered if isinstance(item, Request)]
    request_order = {id(request): position
                     for position, request in enumerate(
                         item for item in items
                         if isinstance(item, Request))}
    admission = AdmissionController(config)
    responses: dict[int, Response] = {}
    events_applied = 0
    last_s = 0.0
    for item in ordered:
        last_s = max(last_s, item.arrival_s)
        if isinstance(item, GalleryEvent):
            apply_gallery_event(engine, item, policy)
            events_applied += 1
            continue
        request = item
        index = request_order[id(request)]
        now = request.arrival_s
        counter("serving.requests", tenant=request.tenant).inc()
        rejection = admission.admit(request.tenant, now)
        if rejection is not None:
            responses[index] = Response(
                request, "rejected", reason=rejection.reason,
                retry_after_s=rejection.retry_after_s, completed_s=now)
            continue
        try:
            result = service.query(request.video)
        except QueryBudgetExceeded as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "budget",
                                        reason="global_budget", error=exc,
                                        completed_s=now)
            continue
        except RetrievalUnavailable as exc:
            admission.refund(request.tenant)
            responses[index] = Response(request, "unavailable",
                                        reason="retrieval_unavailable",
                                        error=exc, completed_s=now)
            continue
        admission.mark_served(request.tenant)
        responses[index] = Response(request, "ok", result=result,
                                    completed_s=now, latency_s=0.0,
                                    batch_size=1)
    served = sum(1 for response in responses.values() if response.ok)
    return ServingReport(
        responses=[responses[index] for index in range(len(requests))],
        served_by_tenant=admission.served_by_tenant(),
        makespan_s=last_s,
        batches=served,
        dispatched=served,
        workers=1,
        gallery_events=events_applied,
    )


__all__ = ["GalleryEvent", "AddVideo", "DeleteVideo", "ReembedVideo",
           "apply_gallery_event", "merge_timeline", "generate_churn",
           "replay_sequential_mutating"]
