"""The differential-oracle registry.

An :class:`OraclePair` declares a reference implementation, a fast
implementation, a seeded input :class:`~repro.qa.generators.Strategy`,
and a comparator — once.  :func:`check_pair` then drives both sides on
generated cases, and on disagreement shrinks the case to a locally
minimal counterexample before raising :class:`OracleFailure`.

Pairs register themselves at import of :mod:`repro.qa.pairs`; the
``tests/qa`` driver parametrizes one pytest per registered pair, so a
new equivalence contract needs one ``register()`` call and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.qa.comparators import assert_close
from repro.qa.generators import Strategy, shrink_to_minimal


class OracleFailure(AssertionError):
    """A reference/fast pair disagreed; carries the minimal case."""

    def __init__(self, pair_name: str, case: dict, cause: Exception) -> None:
        self.pair_name = pair_name
        self.case = case
        self.cause = cause
        summary = "\n".join(
            f"  {key} = {_summarize(value)}" for key, value in case.items())
        super().__init__(
            f"oracle pair {pair_name!r} disagreed on minimal case:\n"
            f"{summary}\n{type(cause).__name__}: {cause}")


def _summarize(value) -> str:
    if isinstance(value, np.ndarray):
        return f"ndarray(shape={value.shape}, dtype={value.dtype})"
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


@dataclass
class OraclePair:
    """One reference/fast equivalence contract.

    ``reference`` and ``fast`` both receive the case dict (expanded as
    keyword arguments) and return a comparable result; ``compare`` is
    ``compare(reference_result, fast_result)`` raising ``AssertionError``
    on mismatch (defaults to :func:`repro.qa.comparators.assert_close`).
    """

    name: str
    reference: Callable
    fast: Callable
    strategy: Strategy
    compare: Callable = assert_close
    cases: int = 4
    seed: int = 20240
    description: str = ""
    guards: tuple[str, ...] = field(default_factory=tuple)

    def check_case(self, case: dict) -> None:
        """Run both sides on one case and compare (raises on mismatch)."""
        self.compare(self.reference(**case), self.fast(**case))

    def _fails(self, case: dict) -> bool:
        try:
            self.check_case(case)
        except AssertionError:
            return True
        return False


_REGISTRY: dict[str, OraclePair] = {}


def register(pair: OraclePair) -> OraclePair:
    """Add a pair to the registry (name must be unique)."""
    if pair.name in _REGISTRY:
        raise ValueError(f"oracle pair {pair.name!r} already registered")
    _REGISTRY[pair.name] = pair
    return pair


def all_pairs() -> dict[str, OraclePair]:
    """Registered pairs by name (imports the built-in declarations)."""
    import repro.qa.pairs  # noqa: F401 — populates the registry

    return dict(_REGISTRY)


def get_pair(name: str) -> OraclePair:
    """Look up one registered pair."""
    pairs = all_pairs()
    if name not in pairs:
        raise KeyError(
            f"unknown oracle pair {name!r}; known: {sorted(pairs)}")
    return pairs[name]


def check_pair(pair: OraclePair, seed: int | None = None,
               cases: int | None = None) -> int:
    """Drive one pair over seeded cases; returns the number checked.

    On a disagreement the failing case is shrunk to a locally minimal
    counterexample and re-raised as :class:`OracleFailure`.
    """
    seed = pair.seed if seed is None else int(seed)
    cases = pair.cases if cases is None else int(cases)
    rng = np.random.default_rng(seed)
    for _ in range(cases):
        case = pair.strategy.sample(rng)
        try:
            pair.check_case(case)
        except AssertionError as error:
            minimal = shrink_to_minimal(pair.strategy, case, pair._fails)
            try:
                pair.check_case(minimal)
            except AssertionError as minimal_error:
                error = minimal_error
            raise OracleFailure(pair.name, minimal, error) from error
    return cases
