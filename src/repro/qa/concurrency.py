"""Deterministic barrier harness for concurrency stress tests.

Free-running thread tests are the right tool for *finding* races but a
terrible tool for *pinning* them: a failing interleaving rarely recurs
on the next run.  :class:`BarrierHarness` gives stress tests both modes
over the same worker function:

* :meth:`run_stepped` — real OS threads, but a controller grants the
  next step to exactly one thread at a time, chosen by a seeded rng.
  The interleaving (and therefore every shared-state observation) is a
  pure function of the seed, so a failure replays exactly.  Thread
  identity is real — code that keys on ``threading.get_ident()`` (the
  tracer's detached spans, lock ownership) is genuinely exercised.
* :meth:`run_free` — all threads released from a start barrier at once
  and left to race.  Nondeterministic by design; used by the ``slow``
  stress tests to hunt for interleavings the stepped schedule missed.

Workers are ``worker(thread_id, step, rng)`` callables; each thread gets
its own child :class:`numpy.random.Generator` spawned from the harness
seed, so per-thread decisions are reproducible independent of schedule.
Return values are collected per ``(thread_id, step)``; the first worker
exception aborts that thread's remaining steps and is re-raised from
:meth:`run_stepped`/:meth:`run_free` with its schedule position.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


@dataclass
class HarnessResult:
    """What one harness run observed."""

    #: Thread ids in the order they were granted steps (stepped mode
    #: only; empty for free-running runs).
    schedule: list[int] = field(default_factory=list)
    #: ``(thread_id, step) -> worker return value``.
    results: dict[tuple[int, int], object] = field(default_factory=dict)
    #: ``thread_id -> exception`` for threads that died.
    errors: dict[int, BaseException] = field(default_factory=dict)

    def raise_first(self) -> None:
        if self.errors:
            thread_id = min(self.errors)
            raise self.errors[thread_id]


class BarrierHarness:
    """Run ``threads`` workers for ``steps`` steps each, two ways."""

    def __init__(self, threads: int, steps: int, seed: int = 0) -> None:
        if threads < 1 or steps < 1:
            raise ValueError("threads and steps must be >= 1")
        self.threads = int(threads)
        self.steps = int(steps)
        self.seed = int(seed)

    def _spawn_rngs(self) -> list[np.random.Generator]:
        seeds = np.random.SeedSequence([self.seed, 0xBA22]).spawn(self.threads)
        return [np.random.default_rng(seq) for seq in seeds]

    # -------------------------------------------------------------- #
    # Stepped (deterministic) mode
    # -------------------------------------------------------------- #
    def run_stepped(self, worker, raise_errors: bool = True) -> HarnessResult:
        """Serialize steps under a seeded scheduler; replays exactly."""
        outcome = HarnessResult()
        rngs = self._spawn_rngs()
        grants = [threading.Event() for _ in range(self.threads)]
        done = threading.Event()

        def body(thread_id: int) -> None:
            for step in range(self.steps):
                grants[thread_id].wait()
                grants[thread_id].clear()
                try:
                    outcome.results[(thread_id, step)] = \
                        worker(thread_id, step, rngs[thread_id])
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    outcome.errors[thread_id] = exc
                    done.set()
                    return
                done.set()

        workers = [threading.Thread(target=body, args=(thread_id,),
                                    name=f"qa-harness-{thread_id}",
                                    daemon=True)
                   for thread_id in range(self.threads)]
        for thread in workers:
            thread.start()
        scheduler = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0x5C4D]))
        remaining = {thread_id: self.steps
                     for thread_id in range(self.threads)}
        while remaining:
            runnable = sorted(remaining)
            thread_id = runnable[int(scheduler.integers(len(runnable)))]
            done.clear()
            grants[thread_id].set()
            done.wait()
            outcome.schedule.append(thread_id)
            if thread_id in outcome.errors:
                del remaining[thread_id]
                continue
            remaining[thread_id] -= 1
            if not remaining[thread_id]:
                del remaining[thread_id]
        for thread in workers:
            thread.join(timeout=10.0)
        if raise_errors:
            outcome.raise_first()
        return outcome

    # -------------------------------------------------------------- #
    # Free-running mode
    # -------------------------------------------------------------- #
    def run_free(self, worker, raise_errors: bool = True) -> HarnessResult:
        """Release every thread at once and let the OS interleave."""
        outcome = HarnessResult()
        rngs = self._spawn_rngs()
        start = threading.Barrier(self.threads)

        def body(thread_id: int) -> None:
            start.wait()
            for step in range(self.steps):
                try:
                    outcome.results[(thread_id, step)] = \
                        worker(thread_id, step, rngs[thread_id])
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    outcome.errors[thread_id] = exc
                    return

        workers = [threading.Thread(target=body, args=(thread_id,),
                                    name=f"qa-harness-{thread_id}",
                                    daemon=True)
                   for thread_id in range(self.threads)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=60.0)
        if raise_errors:
            outcome.raise_first()
        return outcome


__all__ = ["BarrierHarness", "HarnessResult"]
