"""Deterministic golden regeneration CLI.

Usage::

    python -m repro.qa.regen              # regenerate every golden
    python -m repro.qa.regen sparse_query # subset
    python -m repro.qa.regen --check      # recompute + compare, no writes
    python -m repro.qa.regen --force      # allow a dirty git tree

Regeneration refuses to run with uncommitted tracked changes: a golden
is a reviewable statement "this is the behaviour of *this* commit", and
regenerating on top of a dirty tree produces goldens that pin nobody's
code.  ``--check`` never writes, so it skips the cleanliness gate (this
is what the ``qa`` stage of ``scripts/verify.sh`` runs).

Running twice in a row is byte-identical: every scenario is seeded, the
JSON encoding is canonical (sorted keys, fixed indentation, trailing
newline), and ``repro`` pins the BLAS thread count on import.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.qa.golden import (
    SCENARIOS,
    check_scenario,
    dump_golden,
    golden_path,
    write_golden,
)

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _dirty_tracked_files() -> list[str]:
    """Tracked files with uncommitted changes (empty outside a git repo)."""
    try:
        output = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            cwd=_REPO_ROOT, capture_output=True, text=True, timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if output.returncode != 0:
        return []
    return [line for line in output.stdout.splitlines() if line.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate (or check) the qa golden traces.")
    parser.add_argument("scenarios", nargs="*",
                        help=f"subset to run (default: all of "
                             f"{sorted(SCENARIOS)})")
    parser.add_argument("--check", action="store_true",
                        help="recompute and compare against stored goldens "
                             "without writing anything")
    parser.add_argument("--force", action="store_true",
                        help="regenerate even with a dirty git tree")
    args = parser.parse_args(argv)

    names = args.scenarios or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenarios: {unknown}; "
                     f"available: {sorted(SCENARIOS)}")

    if not args.check and not args.force:
        dirty = _dirty_tracked_files()
        if dirty:
            print("regen: refusing to regenerate goldens on a dirty git "
                  "tree (goldens must pin a reviewable commit):",
                  file=sys.stderr)
            for line in dirty[:20]:
                print(f"  {line}", file=sys.stderr)
            print("commit or stash first, or pass --force.", file=sys.stderr)
            return 2

    failures = 0
    for name in names:
        if args.check:
            try:
                problems = check_scenario(name)
            except FileNotFoundError:
                print(f"[qa] {name}: MISSING golden "
                      f"({golden_path(name)}) — run python -m repro.qa.regen")
                failures += 1
                continue
            if problems:
                failures += 1
                print(f"[qa] {name}: MISMATCH")
                for problem in problems:
                    print(f"       {problem}")
            else:
                print(f"[qa] {name}: ok")
            continue
        data = SCENARIOS[name]()
        path = golden_path(name)
        changed = not path.exists() or path.read_text() != dump_golden(data)
        write_golden(name, data)
        print(f"[qa] {name}: {'updated' if changed else 'unchanged'} "
              f"({path})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
