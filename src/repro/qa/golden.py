"""Golden-trace regression scenarios and tolerance-aware comparison.

Each scenario deterministically runs one attack (or one end-to-end
experiment) in a tiny seeded world and distills the result into a
compact JSON document: content hashes of perturbations (exact), the
per-query objective trace (tolerance-compared), and the query/budget
counters (exact).  Goldens live in ``src/repro/qa/goldens/`` (override
with ``REPRO_QA_GOLDEN_DIR``) and are regenerated only through
``python -m repro.qa.regen`` so every change is a deliberate,
reviewable diff.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable

import numpy as np

from repro.attacks.duo.sparse_query import SparseQuery
from repro.attacks.duo.sparse_transfer import SparseTransfer
from repro.attacks.objective import RetrievalObjective
from repro.attacks.search import nes_search, simba_search
from repro.metrics.perturbation import perturbed_frames, sparsity
from repro.qa.comparators import array_digest
from repro.qa.pairs import _qa_priors
from repro.qa.world import build_world, tiny_extractor

#: Exact-match fields; everything else numeric is tolerance-compared.
EXACT_SUFFIXES = ("_digest", "_count", "_queries", "_spa", "_frames",
                  "_lines")
RTOL = 1e-7
ATOL = 1e-9

#: World/attack seeds for the golden scenarios — changing any of these
#: invalidates the goldens, so they are module constants, not arguments.
WORLD_SEED = 73
ATTACK_SEED = 1051


def golden_dir() -> Path:
    """Directory holding the golden JSON files."""
    override = os.environ.get("REPRO_QA_GOLDEN_DIR", "").strip()
    if override:
        return Path(override)
    return Path(__file__).parent / "goldens"


def golden_path(name: str) -> Path:
    return golden_dir() / f"{name}.json"


def load_golden(name: str) -> dict:
    """Read one golden document (raises FileNotFoundError when absent)."""
    return json.loads(golden_path(name).read_text())


def dump_golden(data: dict) -> str:
    """Canonical byte-stable JSON encoding (sorted keys, trailing newline)."""
    return json.dumps(data, sort_keys=True, indent=2,
                      ensure_ascii=True) + "\n"


def write_golden(name: str, data: dict) -> Path:
    path = golden_path(name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_golden(data))
    return path


# ---------------------------------------------------------------------- #
# Scenarios
# ---------------------------------------------------------------------- #
def _objective_world():
    world = build_world(WORLD_SEED, cache_size=0)
    objective = RetrievalObjective(world.service, world.original,
                                   world.target)
    return world, objective


def scenario_sparse_query() -> dict:
    world, objective = _objective_world()
    attack = SparseQuery(iter_num_q=16, tau=30, rng=ATTACK_SEED)
    priors = _qa_priors(world.original.pixels.shape, ATTACK_SEED + 1)
    adversarial, trace = attack.run(world.original, priors, objective)
    perturbation = adversarial.perturbation_from(world.original)
    return {
        "perturbation_digest": array_digest(adversarial.pixels),
        "trace": [float(v) for v in trace],
        "final_objective": float(trace[-1]),
        "objective_queries": int(objective.queries),
        "service_query_count": int(world.service.query_count),
        "perturbation_spa": sparsity(perturbation),
        "perturbed_frames": int(perturbed_frames(perturbation)),
    }


def scenario_sparse_transfer() -> dict:
    world, _ = _objective_world()
    surrogate = tiny_extractor(ATTACK_SEED + 2)
    attack = SparseTransfer(surrogate, k=48, n=2, tau=30, outer_iters=1,
                            theta_steps=4, frame_steps=2, rng=ATTACK_SEED + 3)
    priors = attack.run(world.original, world.target)
    perturbation = priors.perturbation()
    return {
        "perturbation_digest": array_digest(perturbation),
        "theta_digest": array_digest(priors.theta),
        "frame_mask": [float(v) for v in priors.frame_mask],
        "perturbation_spa": sparsity(perturbation),
        "perturbed_frames": int(perturbed_frames(perturbation)),
        "theta_linf": float(np.abs(priors.theta).max()),
    }


def scenario_simba() -> dict:
    world, objective = _objective_world()
    support = np.zeros(world.original.pixels.shape, dtype=bool)
    support[:2] = True
    adversarial, perturbation, trace = simba_search(
        world.original, objective, support, tau=30 / 255.0, iterations=10,
        rng=ATTACK_SEED + 4)
    return {
        "perturbation_digest": array_digest(perturbation),
        "trace": [float(v) for v in trace],
        "final_objective": float(min(trace)),
        "objective_queries": int(objective.queries),
        "service_query_count": int(world.service.query_count),
    }


def scenario_nes() -> dict:
    world, objective = _objective_world()
    support = np.zeros(world.original.pixels.shape, dtype=bool)
    support[:2] = True
    adversarial, perturbation, trace = nes_search(
        world.original, objective, support, tau=30 / 255.0, iterations=3,
        samples=2, rng=ATTACK_SEED + 6)
    return {
        "perturbation_digest": array_digest(perturbation),
        "trace": [float(v) for v in trace],
        "final_objective": float(min(trace)),
        "objective_queries": int(objective.queries),
        "service_query_count": int(world.service.query_count),
    }


def scenario_run_all_fig5() -> dict:
    """End-to-end: the quick-scale fig5 experiment through the CLI."""
    from repro.experiments.run_all import main

    with tempfile.TemporaryDirectory() as scratch:
        out_dir = Path(scratch) / "out"
        cache_dir = Path(scratch) / "cache"
        previous = os.environ.get("REPRO_CACHE")
        os.environ["REPRO_CACHE"] = str(cache_dir)
        try:
            code = main(["fig5", "--quick", "--no-obs",
                         "--out", str(out_dir)])
        finally:
            if previous is None:
                os.environ.pop("REPRO_CACHE", None)
            else:
                os.environ["REPRO_CACHE"] = previous
        assert code == 0, f"run_all fig5 exited with {code}"
        text = (out_dir / "fig5.txt").read_text()
    return {
        "text_digest": array_digest(np.frombuffer(text.encode(),
                                                  dtype=np.uint8)),
        "text_lines": text.splitlines(),
    }


def scenario_router_decisions() -> dict:
    """Routing decisions against the checked-in calibration fixture.

    Pins three contracts at once: the fixture file is byte-stable (its
    digest is part of the golden), a given profile routes every probed
    cell deterministically, and the guard rails hold — unmeasured cells
    (cold start) fall back to the default and options whose measured
    recall sits below the floor are never chosen.
    """
    from repro.router import CalibrationProfile, Router

    fixture = Path(__file__).parent / "goldens" / \
        "router_profile_fixture.json"
    profile = CalibrationProfile.load(fixture)
    router = Router(profile=profile)
    probes = [
        ("search", "b1", ("scalar", "batched"), "batched"),
        ("search", "b2", ("scalar", "batched"), "batched"),
        ("search", "b3", ("scalar", "batched"), "batched"),
        ("search", "b9", ("scalar", "batched"), "batched"),  # cold cell
        ("embed_cache", "default", ("off", "on"), "on"),
        ("fuse", "default", ("off", "on"), "off"),
        ("speculate", "simba", ("off", "on"), "on"),
        ("speculate", "nes", ("off", "on"), "on"),
        ("serving_batch", "default",
         ("1", "2", "4", "8", "16", "32"), "8"),
        ("rerank", "hamming", ("32", "64", "128"), "64"),
        ("conv", "e12", ("einsum", "gemm"), "einsum"),  # unrouted domain
    ]
    decisions = [
        f"{domain}/{key} default={default} -> "
        f"{router.decide(domain, key, options, default)}"
        for domain, key, options, default in probes
    ]
    return {
        "profile_digest": array_digest(
            np.frombuffer(fixture.read_bytes(), dtype=np.uint8)),
        "decision_lines": decisions,
        "cell_count": profile.num_cells,
    }


SCENARIOS: dict[str, Callable[[], dict]] = {
    "sparse_query": scenario_sparse_query,
    "sparse_transfer": scenario_sparse_transfer,
    "simba": scenario_simba,
    "nes": scenario_nes,
    "run_all_fig5": scenario_run_all_fig5,
    "router_decisions": scenario_router_decisions,
}


# ---------------------------------------------------------------------- #
# Comparison
# ---------------------------------------------------------------------- #
def _is_exact(key: str) -> bool:
    return key.endswith(EXACT_SUFFIXES) or key == "frame_mask"


def compare_golden(expected: dict, actual: dict,
                   rtol: float = RTOL, atol: float = ATOL) -> list[str]:
    """Return human-readable mismatch descriptions (empty = match).

    Hash/count fields compare exactly; float fields and traces compare
    with tolerance, so a golden survives benign platform drift while
    still pinning hashes on the platforms that generated it.
    """
    problems: list[str] = []
    for key in sorted(set(expected) | set(actual)):
        if key not in expected:
            problems.append(f"unexpected field {key!r}")
            continue
        if key not in actual:
            problems.append(f"missing field {key!r}")
            continue
        want, got = expected[key], actual[key]
        if _is_exact(key):
            if want != got:
                problems.append(f"{key}: expected {want!r}, got {got!r}")
            continue
        try:
            np.testing.assert_allclose(np.asarray(got, dtype=float),
                                       np.asarray(want, dtype=float),
                                       rtol=rtol, atol=atol)
        except (AssertionError, ValueError) as error:
            problems.append(f"{key}: {str(error).strip().splitlines()[0]} "
                            f"(expected {want!r}, got {got!r})"
                            if not isinstance(error, AssertionError)
                            else f"{key}: outside tolerance "
                                 f"(rtol={rtol}, atol={atol})")
    return problems


def check_scenario(name: str) -> list[str]:
    """Recompute one scenario and compare it to its stored golden."""
    expected = load_golden(name)
    actual = SCENARIOS[name]()
    return compare_golden(expected, actual)
