"""Invariant checkers: NaN/Inf guards, budget conservation, metric ranges.

Each checker is usable three ways: called directly from a test, wrapped
in a pytest fixture (see ``tests/qa/conftest.py``), or — for the
numerical guard — installed as an always-on runtime hook by setting
``REPRO_QA_NANGUARD=1`` before importing :mod:`repro.qa`.

The finite guard piggybacks on the autograd profiling hook point
(:func:`repro.nn.tensor.set_autograd_hooks`): every op-result tensor is
checked for NaN/Inf at construction, and any previously-installed hook
(e.g. the obs profiler) is chained, not displaced.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.errors import ReproError
from repro.nn.tensor import get_autograd_hooks, set_autograd_hooks


class NumericalFault(ReproError):
    """An op produced NaN/Inf inside a guarded autograd region."""


# ---------------------------------------------------------------------- #
# NaN/Inf detection on autograd graphs
# ---------------------------------------------------------------------- #
def _finite_make_hook(previous):
    def hook(op: str, data: np.ndarray) -> None:
        if not np.all(np.isfinite(data)):
            bad = int(data.size - np.count_nonzero(np.isfinite(data)))
            raise NumericalFault(
                f"op {op!r} produced {bad} non-finite value(s) "
                f"in a tensor of shape {np.shape(data)}")
        if previous is not None:
            previous(op, data)
    return hook


@contextlib.contextmanager
def finite_guard():
    """Raise :class:`NumericalFault` on any non-finite op result.

    Chains (and afterwards restores) whatever autograd hooks were
    already installed, so it composes with the obs profiler.
    """
    previous_make, previous_backward = get_autograd_hooks()
    set_autograd_hooks(_finite_make_hook(previous_make), previous_backward)
    try:
        yield
    finally:
        set_autograd_hooks(previous_make, previous_backward)


def install_runtime_guards() -> bool:
    """Install the finite guard process-wide when ``REPRO_QA_NANGUARD=1``.

    Returns whether the guard was installed.  Called on ``repro.qa``
    import; a no-op (returning False) without the env flag.
    """
    from repro.utils.envflags import env_bool

    if not env_bool("REPRO_QA_NANGUARD", False):
        return False
    previous_make, previous_backward = get_autograd_hooks()
    set_autograd_hooks(_finite_make_hook(previous_make), previous_backward)
    return True


def assert_finite_graph(tensor) -> None:
    """Walk a tensor's autograd graph; fail on any non-finite data/grad."""
    seen: set[int] = set()
    stack = [tensor]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if not np.all(np.isfinite(node.data)):
            raise NumericalFault(
                f"non-finite values in {node.op!r} output "
                f"(shape {node.data.shape})")
        if node.grad is not None and not np.all(np.isfinite(node.grad)):
            raise NumericalFault(
                f"non-finite gradient at {node.op!r} "
                f"(shape {node.grad.shape})")
        stack.extend(node._parents)


# ---------------------------------------------------------------------- #
# Budget-accounting conservation
# ---------------------------------------------------------------------- #
def check_budget_conservation(service) -> None:
    """Every issued query is either charged or refunded — never both.

    Uses the ledger counters on :class:`RetrievalService`:
    ``queries_issued == query_count + queries_refunded``, with all three
    non-negative.
    """
    issued = service.queries_issued
    charged = service.query_count
    refunded = service.queries_refunded
    assert issued >= 0 and charged >= 0 and refunded >= 0, (
        f"negative query accounting: issued={issued} charged={charged} "
        f"refunded={refunded}")
    assert issued == charged + refunded, (
        f"query accounting leak: issued={issued} != "
        f"charged={charged} + refunded={refunded}")


# ---------------------------------------------------------------------- #
# Metric range checks
# ---------------------------------------------------------------------- #
def assert_unit_interval(value: float, name: str) -> None:
    """A metric documented as ∈ [0, 1] must actually be in [0, 1]."""
    assert np.isfinite(value), f"{name} is non-finite: {value!r}"
    assert 0.0 <= float(value) <= 1.0, f"{name} out of [0, 1]: {value!r}"


def spa_fraction(perturbation: np.ndarray) -> float:
    """Spa normalized by the video size — the [0, 1] form of sparsity."""
    from repro.metrics.perturbation import sparsity

    size = int(np.asarray(perturbation).size)
    return sparsity(perturbation) / size if size else 0.0


def check_metric_ranges(values: dict[str, float]) -> None:
    """Assert every named metric value lies in [0, 1]."""
    for name, value in values.items():
        assert_unit_interval(value, name)


# ---------------------------------------------------------------------- #
# Snapshot consistency on mutable galleries
# ---------------------------------------------------------------------- #
def check_snapshot_consistency(gallery, snapshot, entries,
                               k: int | None = None) -> None:
    """A retrieval list served from ``snapshot`` is one coherent version.

    Every returned id must have been live at ``snapshot.version``
    (per :meth:`ShardedGallery.is_visible` — no resurrected tombstones,
    no rows from a later version), ids are unique (aliased re-embed
    generations collapse to one public id), and scores arrive best
    first.  This is the torn-read check for churn-under-traffic: a
    query pinned to version v must never mix rows from v and v+1.
    """
    ids = [entry.video_id for entry in entries]
    assert len(ids) == len(set(ids)), (
        f"duplicate ids in one retrieval list: {ids}")
    scores = [entry.score for entry in entries]
    assert scores == sorted(scores, reverse=True), (
        f"retrieval list not sorted best-first: {scores}")
    if k is not None:
        assert len(entries) <= int(k), (
            f"retrieval list longer than k={k}: {len(entries)} entries")
    version = snapshot.version
    for video_id in ids:
        assert gallery.is_visible(video_id, version), (
            f"id {video_id!r} returned from snapshot v{version} was not "
            f"visible at that version (torn read)")


# ---------------------------------------------------------------------- #
# Embed-cache coherence
# ---------------------------------------------------------------------- #
def check_cache_coherence(engine, videos) -> None:
    """A cache hit must be bit-identical to a fresh model forward.

    Embeds ``videos`` twice through the engine (second pass may hit the
    cache), then once more with the cache cleared, and requires all
    three feature matrices to be exactly equal.
    """
    first = engine.embed_queries(videos)
    second = engine.embed_queries(videos)
    np.testing.assert_array_equal(
        first, second, err_msg="cached embedding differs from first pass")
    hits_before = engine.embedding_cache.hits
    engine.clear_embedding_cache()
    fresh = engine.embed_queries(videos)
    np.testing.assert_array_equal(
        first, fresh, err_msg="embedding after cache clear differs")
    if engine.embedding_cache.enabled:
        assert hits_before >= len(videos), (
            f"expected >= {len(videos)} cache hits on the second pass, "
            f"saw {hits_before}")
