"""Correctness-tooling subsystem: oracles, goldens, invariants.

Three pillars (DESIGN.md §11):

* :mod:`repro.qa.oracle` + :mod:`repro.qa.pairs` — a registry of
  reference/fast implementation pairs (GEMM conv vs einsum, batched vs
  sequential search, cached vs uncached embeddings, replicated vs
  single-shard retrieval, speculative vs sequential attack steps) checked
  on seeded generated inputs with shrink-on-failure.
* :mod:`repro.qa.golden` + :mod:`repro.qa.regen` — compact JSON golden
  traces for the attack loops and one end-to-end experiment, with a
  deterministic regeneration CLI (``python -m repro.qa.regen``).
* :mod:`repro.qa.invariants` — NaN/Inf autograd guards, query-budget
  conservation, metric range checks, and embed-cache coherence, usable
  as pytest helpers or opt-in runtime guards (``REPRO_QA_NANGUARD=1``).

The mutation hooks in :mod:`repro.qa.mutation` exist to prove the
harness has teeth: a deliberately perturbed conv kernel must be caught
by the oracle.
"""

from repro.qa.comparators import (
    array_digest,
    assert_close,
    assert_retrieval_lists_equal,
)
from repro.qa.concurrency import BarrierHarness, HarnessResult
from repro.qa.generators import Strategy, shrink_int, shrink_to_minimal
from repro.qa.invariants import (
    NumericalFault,
    assert_finite_graph,
    check_budget_conservation,
    check_cache_coherence,
    check_metric_ranges,
    check_snapshot_consistency,
    finite_guard,
    install_runtime_guards,
)
from repro.qa.oracle import (
    OracleFailure,
    OraclePair,
    all_pairs,
    check_pair,
    get_pair,
    register,
)

__all__ = [
    "BarrierHarness",
    "HarnessResult",
    "NumericalFault",
    "OracleFailure",
    "OraclePair",
    "Strategy",
    "all_pairs",
    "array_digest",
    "assert_close",
    "assert_finite_graph",
    "assert_retrieval_lists_equal",
    "check_budget_conservation",
    "check_cache_coherence",
    "check_metric_ranges",
    "check_pair",
    "check_snapshot_consistency",
    "finite_guard",
    "get_pair",
    "install_runtime_guards",
    "register",
    "shrink_int",
    "shrink_to_minimal",
]

install_runtime_guards()
