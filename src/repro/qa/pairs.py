"""Built-in differential-oracle pair declarations.

Importing this module populates the registry in :mod:`repro.qa.oracle`
with every reference/fast equivalence contract the library claims:

* ``conv2d`` / ``conv3d``: strided-einsum vs im2col GEMM (forward and
  both gradients) — the contract behind ``REPRO_CONV_IMPL``;
* ``search`` vs ``search_batch`` on :class:`FeatureIndex`,
  :class:`IVFIndex`, and :class:`ShardedGallery`;
* cached vs uncached query embeddings (``REPRO_EMBED_CACHE``);
* replicated (r = 2, 3) vs single-shard retrieval;
* sequential vs speculative/batched SparseQuery steps;
* scalar vs vectorized NDCG list similarity;
* micro-batched serving front end vs sequential replay against the bare
  service (``repro.serving``).

Each pair builds its own inputs deterministically from scalar case
parameters, so the shrinker can minimize counterexamples by shrinking
integers without ever producing inconsistent array shapes.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.duo.priors import TransferPriors
from repro.attacks.duo.sparse_query import SparseQuery
from repro.attacks.objective import RetrievalObjective
from repro.metrics.similarity import ndcg_similarity, ndcg_similarity_many
from repro.nn import Tensor
from repro.nn import functional as F
from repro.perf import gemm_conv
from repro.qa.comparators import (
    array_digest,
    assert_close,
    assert_retrieval_lists_equal,
)
from repro.qa.generators import (
    Strategy,
    draw_clustered_gallery,
    draw_gallery,
    shrink_int,
)
from repro.qa.oracle import OraclePair, register
from repro.qa.world import build_world, tiny_extractor
from repro.resilience.config import ResilienceConfig
from repro.retrieval.ann import IVFIndex
from repro.retrieval.index import FeatureIndex
from repro.retrieval.nodes import ShardedGallery
from repro.serving import (
    ServingConfig,
    ServingFrontend,
    TenantPolicy,
    TenantSpec,
    generate_timeline,
    replay_sequential,
)

# ---------------------------------------------------------------------- #
# conv einsum vs GEMM
# ---------------------------------------------------------------------- #


def _conv_case(seed: int, batch: int, in_ch: int, out_ch: int,
               spatial: tuple[int, ...], kernel: tuple[int, ...],
               stride: tuple[int, ...], padding: tuple[int, ...]):
    """Deterministic (x, w) for a conv problem, sanitized to be valid."""
    spatial = tuple(max(size, k) for size, k in zip(spatial, kernel))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(batch, in_ch, *spatial))
    w = rng.normal(size=(out_ch, in_ch, *kernel))
    return x, w, stride, padding


def _conv_run(impl: str, conv, seed, batch, in_ch, out_ch, spatial, kernel,
              stride, padding):
    """Forward + backward of one conv under a forced implementation."""
    x, w, stride, padding = _conv_case(seed, batch, in_ch, out_ch, spatial,
                                       kernel, stride, padding)
    previous = gemm_conv._forced_impl
    gemm_conv.set_conv_impl(impl)
    try:
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        out = conv(xt, wt, stride=stride, padding=padding)
        out.sum().backward()
        return {"out": out.data, "grad_x": xt.grad, "grad_w": wt.grad}
    finally:
        gemm_conv.set_conv_impl(previous)


def _conv2d_strategy(rng: np.random.Generator) -> dict:
    kernel = (int(rng.integers(1, 4)), int(rng.integers(1, 4)))
    return {
        "seed": int(rng.integers(0, 2**31)),
        "batch": int(rng.integers(1, 4)),
        "in_ch": int(rng.integers(1, 4)),
        "out_ch": int(rng.integers(1, 4)),
        "spatial": (int(rng.integers(3, 10)), int(rng.integers(3, 10))),
        "kernel": kernel,
        "stride": (int(rng.integers(1, 3)), int(rng.integers(1, 3))),
        "padding": (int(rng.integers(0, 3)), int(rng.integers(0, 3))),
    }


def _conv3d_strategy(rng: np.random.Generator) -> dict:
    return {
        "seed": int(rng.integers(0, 2**31)),
        "batch": int(rng.integers(1, 3)),
        "in_ch": int(rng.integers(1, 3)),
        "out_ch": int(rng.integers(1, 3)),
        "spatial": (int(rng.integers(2, 6)), int(rng.integers(3, 8)),
                    int(rng.integers(3, 8))),
        "kernel": (int(rng.integers(1, 3)), int(rng.integers(1, 4)),
                   int(rng.integers(1, 4))),
        "stride": (int(rng.integers(1, 3)), int(rng.integers(1, 3)),
                   int(rng.integers(1, 3))),
        "padding": (int(rng.integers(0, 2)), int(rng.integers(0, 2)),
                    int(rng.integers(0, 2))),
    }


_CONV_SHRINKERS = {
    "batch": shrink_int(1),
    "in_ch": shrink_int(1),
    "out_ch": shrink_int(1),
}


def _conv_compare(reference, fast):
    assert_close(reference, fast, rtol=1e-8, atol=1e-10)


register(OraclePair(
    name="conv2d.einsum_vs_gemm",
    reference=lambda **case: _conv_run("einsum", F.conv2d, **case),
    fast=lambda **case: _conv_run("gemm", F.conv2d, **case),
    strategy=Strategy("conv2d", _conv2d_strategy, _CONV_SHRINKERS),
    compare=_conv_compare,
    cases=6,
    description="conv2d forward/backward: strided einsum vs im2col GEMM",
    guards=("REPRO_CONV_IMPL",),
))

register(OraclePair(
    name="conv3d.einsum_vs_gemm",
    reference=lambda **case: _conv_run("einsum", F.conv3d, **case),
    fast=lambda **case: _conv_run("gemm", F.conv3d, **case),
    strategy=Strategy("conv3d", _conv3d_strategy, _CONV_SHRINKERS),
    compare=_conv_compare,
    cases=4,
    description="conv3d forward/backward: strided einsum vs im2col GEMM",
    guards=("REPRO_CONV_IMPL",),
))


# ---------------------------------------------------------------------- #
# search vs search_batch (FeatureIndex / IVFIndex / ShardedGallery)
# ---------------------------------------------------------------------- #
def _index_strategy(rng: np.random.Generator) -> dict:
    return {
        "seed": int(rng.integers(0, 2**31)),
        "rows": int(rng.integers(1, 40)),
        "dim": int(rng.integers(1, 12)),
        "batch": int(rng.integers(1, 8)),
        "k": int(rng.integers(1, 10)),
    }


_INDEX_SHRINKERS = {
    "rows": shrink_int(1),
    "dim": shrink_int(1),
    "batch": shrink_int(1),
    "k": shrink_int(1),
}


def _queries_for(seed: int, batch: int, dim: int) -> np.ndarray:
    return np.random.default_rng(seed + 1).normal(size=(batch, dim))


def _feature_index(seed, rows, dim):
    index = FeatureIndex()
    index.add_batch(*draw_gallery(np.random.default_rng(seed), rows, dim))
    return index


def _search_sequential(build):
    def run(seed, rows, dim, batch, k):
        index = build(seed, rows, dim)
        queries = _queries_for(seed, batch, dim)
        return [index.search(query, k) for query in queries]
    return run


def _search_batched(build):
    def run(seed, rows, dim, batch, k):
        index = build(seed, rows, dim)
        queries = _queries_for(seed, batch, dim)
        return index.search_batch(queries, k)
    return run


register(OraclePair(
    name="feature_index.search_vs_batch",
    reference=_search_sequential(_feature_index),
    fast=_search_batched(_feature_index),
    strategy=Strategy("feature_index", _index_strategy, _INDEX_SHRINKERS),
    compare=assert_retrieval_lists_equal,
    cases=8,
    description="FeatureIndex.search_batch vs per-query search (bit-exact)",
))


def _ivf_index(seed, rows, dim):
    rng = np.random.default_rng(seed)
    index = IVFIndex(num_cells=4, nprobe=2, rng=np.random.default_rng(seed + 2))
    index.add_batch(*draw_gallery(rng, rows, dim))
    index.build()
    return index


register(OraclePair(
    name="ivf_index.search_vs_batch",
    reference=_search_sequential(_ivf_index),
    fast=_search_batched(_ivf_index),
    strategy=Strategy("ivf_index", _index_strategy, _INDEX_SHRINKERS),
    compare=assert_retrieval_lists_equal,
    cases=6,
    description="IVFIndex.search_batch vs per-query search (same cells)",
))


def _gallery_strategy(rng: np.random.Generator) -> dict:
    case = _index_strategy(rng)
    case["num_nodes"] = int(rng.integers(1, 5))
    return case


def _sharded_gallery(seed, rows, dim, num_nodes, replication=1):
    gallery = ShardedGallery(
        num_nodes=num_nodes,
        resilience=None if replication == 1 else
        ResilienceConfig(replication=replication))
    gallery.add_batch(*draw_gallery(np.random.default_rng(seed), rows, dim))
    return gallery


register(OraclePair(
    name="sharded_gallery.search_vs_batch",
    reference=lambda seed, rows, dim, batch, k, num_nodes: [
        _sharded_gallery(seed, rows, dim, num_nodes).search(query, k)
        for query in _queries_for(seed, batch, dim)
    ],
    fast=lambda seed, rows, dim, batch, k, num_nodes:
        _sharded_gallery(seed, rows, dim, num_nodes).search_batch(
            _queries_for(seed, batch, dim), k),
    strategy=Strategy("sharded_gallery", _gallery_strategy,
                      dict(_INDEX_SHRINKERS, num_nodes=shrink_int(1))),
    compare=assert_retrieval_lists_equal,
    cases=6,
    description="ShardedGallery scatter/gather batch vs sequential search",
))


# ---------------------------------------------------------------------- #
# compressed index tier (+ exact rerank) vs exact FeatureIndex
# ---------------------------------------------------------------------- #
#: Mean recall@k the compressed tiers must reach against the exact
#: index on clustered (embedding-shaped) galleries.
COMPRESSED_RECALL_FLOOR = 0.95


def _compressed_case(seed: int, rows: int, dim: int, batch: int, k: int):
    """Clustered gallery + near-gallery queries (shared by both sides)."""
    rng = np.random.default_rng(seed)
    ids, labels, features = draw_clustered_gallery(rng, rows, dim)
    anchors = rng.choice(rows, size=min(batch, rows), replace=False)
    queries = features[anchors] + 0.1 * rng.normal(
        size=(len(anchors), dim))
    if len(anchors) < batch:  # more queries than rows: recycle anchors
        extra = rng.integers(0, rows, size=batch - len(anchors))
        queries = np.concatenate([
            queries,
            features[extra] + 0.1 * rng.normal(size=(len(extra), dim)),
        ])
    return ids, labels, features, queries


def _exact_id_lists(tier, seed, rows, dim, batch, k):
    ids, labels, features, queries = _compressed_case(seed, rows, dim,
                                                      batch, k)
    index = FeatureIndex()
    index.add_batch(ids, labels, features)
    return [[entry.video_id for entry in result]
            for result in index.search_batch(queries, k)]


def _compressed_id_lists(tier, seed, rows, dim, batch, k):
    from repro.hashindex import BinaryHashIndex, IVFPQIndex

    ids, labels, features, queries = _compressed_case(seed, rows, dim,
                                                      batch, k)
    rerank = max(32, 4 * k)
    if tier == "hamming":
        index = BinaryHashIndex(nbits=128, coder="itq", rerank=rerank,
                                rng=seed + 1)
    else:
        index = IVFPQIndex(num_cells=8, nprobe=4,
                           num_subvectors=min(8, dim), rerank=rerank,
                           rng=seed + 1)
    index.add_batch(ids, labels, features)
    return [[entry.video_id for entry in result]
            for result in index.search_batch(queries, k)]


def _recall_floor_compare(reference, fast):
    """Mean per-query overlap with the exact top-k must clear the floor."""
    recalls = [
        len(set(exact) & set(approx)) / max(len(exact), 1)
        for exact, approx in zip(reference, fast)
    ]
    mean_recall = sum(recalls) / max(len(recalls), 1)
    assert mean_recall >= COMPRESSED_RECALL_FLOOR, (
        f"compressed recall@k {mean_recall:.3f} below floor "
        f"{COMPRESSED_RECALL_FLOOR} (per-query: "
        f"{[round(r, 2) for r in recalls]})")


def _compressed_strategy(rng: np.random.Generator) -> dict:
    return {
        "tier": str(rng.choice(("hamming", "ivfpq"))),
        "seed": int(rng.integers(0, 2**31)),
        "rows": int(rng.integers(48, 200)),
        "dim": int(rng.integers(8, 28)),
        "batch": int(rng.integers(1, 8)),
        "k": int(rng.integers(1, 11)),
    }


register(OraclePair(
    name="hashindex.compressed_vs_exact",
    reference=_exact_id_lists,
    fast=_compressed_id_lists,
    strategy=Strategy("hashindex", _compressed_strategy,
                      dict(_INDEX_SHRINKERS)),
    compare=_recall_floor_compare,
    cases=6,
    description="compressed tiers (+ exact rerank) hold recall@k ≥ "
                f"{COMPRESSED_RECALL_FLOOR} vs the exact FeatureIndex",
    guards=("REPRO_INDEX_TIER",),
))


# ---------------------------------------------------------------------- #
# replicated vs single-shard retrieval
# ---------------------------------------------------------------------- #
def _replication_strategy(rng: np.random.Generator) -> dict:
    case = _index_strategy(rng)
    case["num_nodes"] = int(rng.integers(3, 6))
    case["replication"] = int(rng.choice((2, 3)))
    return case


register(OraclePair(
    name="gallery.replicated_vs_single",
    reference=lambda seed, rows, dim, batch, k, num_nodes, replication: [
        _sharded_gallery(seed, rows, dim, num_nodes).search(query, k)
        for query in _queries_for(seed, batch, dim)
    ],
    fast=lambda seed, rows, dim, batch, k, num_nodes, replication: [
        _sharded_gallery(seed, rows, dim, num_nodes,
                         replication=replication).search(query, k)
        for query in _queries_for(seed, batch, dim)
    ],
    strategy=Strategy("replication", _replication_strategy,
                      dict(_INDEX_SHRINKERS, replication=shrink_int(2))),
    compare=assert_retrieval_lists_equal,
    cases=5,
    description="replication r=2,3 keeps retrieval exact vs r=1",
))


# ---------------------------------------------------------------------- #
# cached vs uncached query embeddings
# ---------------------------------------------------------------------- #
def _embed_run(cache_size: int, seed: int, num_videos: int):
    world = build_world(seed, num_videos=5, cache_size=cache_size)
    from repro.qa.world import tiny_videos

    queries = tiny_videos(seed + 17, num_videos)
    first = world.engine.embed_queries(queries)
    second = world.engine.embed_queries(queries)  # cache hits when enabled
    return {"first": first, "second": second}


def _embed_compare(reference, fast):
    np.testing.assert_array_equal(reference["first"], fast["first"])
    np.testing.assert_array_equal(reference["second"], fast["second"])
    np.testing.assert_array_equal(fast["first"], fast["second"])


register(OraclePair(
    name="engine.cached_vs_uncached",
    reference=lambda seed, num_videos: _embed_run(0, seed, num_videos),
    fast=lambda seed, num_videos: _embed_run(32, seed, num_videos),
    strategy=Strategy(
        "embed_cache",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "num_videos": int(rng.integers(1, 5))},
        {"num_videos": shrink_int(1)},
    ),
    compare=_embed_compare,
    cases=2,
    description="EmbeddingCache hits are bit-identical to fresh forwards",
    guards=("REPRO_EMBED_CACHE",),
))


# ---------------------------------------------------------------------- #
# sequential vs speculative SparseQuery
# ---------------------------------------------------------------------- #
def _qa_priors(shape: tuple[int, ...], seed: int, k: int = 48) -> TransferPriors:
    rng = np.random.default_rng(seed)
    per_frame = int(np.prod(shape[1:]))
    flat = np.zeros(int(np.prod(shape)), dtype=bool)
    flat[rng.choice(2 * per_frame, size=min(k, 2 * per_frame),
                    replace=False)] = True
    theta = np.zeros(shape)
    theta.reshape(-1)[flat] = rng.uniform(-0.1, 0.1, size=flat.sum())
    frame_mask = np.zeros(shape[0])
    frame_mask[:2] = 1.0
    return TransferPriors(pixel_mask=flat.reshape(shape).astype(float),
                          frame_mask=frame_mask, theta=theta)


def _sparse_query_run(batched: bool, seed: int, iters: int):
    world = build_world(seed, cache_size=0)
    objective = RetrievalObjective(world.service, world.original,
                                   world.target)
    attack = SparseQuery(iter_num_q=iters, tau=30, rng=seed + 5,
                         batched=batched)
    priors = _qa_priors(world.original.pixels.shape, seed + 9)
    adversarial, trace = attack.run(world.original, priors, objective)
    return {
        "perturbation_digest": array_digest(adversarial.pixels),
        "trace": list(trace),
        "objective_trace": list(objective.trace),
        "objective_queries": objective.queries,
        "service_queries": world.service.query_count,
    }


def _exact_compare(reference, fast):
    assert reference == fast, (
        f"sequential/speculative state diverged:\n  seq: {reference}\n"
        f"  spec: {fast}")


register(OraclePair(
    name="sparse_query.sequential_vs_speculative",
    reference=lambda seed, iters: _sparse_query_run(False, seed, iters),
    fast=lambda seed, iters: _sparse_query_run(True, seed, iters),
    strategy=Strategy(
        "sparse_query",
        lambda rng: {"seed": int(rng.integers(0, 1000)),
                     "iters": int(rng.integers(2, 6))},
        {"iters": shrink_int(1)},
    ),
    compare=_exact_compare,
    cases=2,
    description="speculative ±ε SparseQuery steps match the sequential loop",
))


# ---------------------------------------------------------------------- #
# scalar vs vectorized NDCG similarity
# ---------------------------------------------------------------------- #
def _ndcg_lists(seed: int, num_lists: int, length: int, universe: int):
    from repro.qa.generators import draw_id_list

    rng = np.random.default_rng(seed)
    lists_a = [draw_id_list(rng, universe, length) for _ in range(num_lists)]
    list_b = draw_id_list(rng, universe, length)
    return lists_a, list_b


# ---------------------------------------------------------------------- #
# micro-batched serving front end vs sequential replay
# ---------------------------------------------------------------------- #
def _serving_run(batched: bool, seed: int, tenants: int, per_tenant: int,
                 batch: int, limited: int):
    """One tenant timeline through the front end (or the bare service).

    The contract under test: with every request admitted into an
    uncontended queue (capacity exceeds the offered load, all
    interactive, no global budget), micro-batching is purely a
    performance transform — statuses, retrieval lists, per-tenant served
    counts, and the service ledger match the sequential replay exactly.
    Rate limiting stays in scope because admission decisions depend only
    on arrival times, never on batch state.
    """
    from repro.qa.world import tiny_videos

    world = build_world(seed % 997, num_videos=6)
    videos = tiny_videos(seed + 3, 3, label_base=5)
    specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, per_tenant)
             for i in range(tenants)]
    timeline = generate_timeline(seed + 11, specs, videos)
    config = ServingConfig(
        max_batch_size=batch, max_wait_s=0.003, queue_capacity=512,
        default_tenant=TenantPolicy(rate_per_s=120.0 if limited else None,
                                    burst=2))
    if batched:
        report = ServingFrontend(world.service, config).run(timeline)
    else:
        report = replay_sequential(timeline, world.service, config)
    return {
        "statuses": [response.status for response in report.responses],
        "lists": [response.result for response in report.responses
                  if response.ok],
        "served_by_tenant": report.served_by_tenant,
        "ledger": (world.service.query_count,
                   world.service.queries_issued,
                   world.service.queries_refunded),
    }


def _serving_compare(reference, fast):
    assert reference["statuses"] == fast["statuses"], (
        f"statuses diverged:\n  seq: {reference['statuses']}\n"
        f"  batched: {fast['statuses']}")
    assert reference["served_by_tenant"] == fast["served_by_tenant"], (
        f"per-tenant counts diverged: {reference['served_by_tenant']} vs "
        f"{fast['served_by_tenant']}")
    assert reference["ledger"] == fast["ledger"], (
        f"service ledger diverged: {reference['ledger']} vs "
        f"{fast['ledger']}")
    # Rankings must match exactly; scores only to float tolerance — the
    # embedding forward is batched (one model batch of B vs B batches of
    # one), and BLAS picks different kernels per batch shape, so the
    # last bit can differ (same contract as
    # ``test_query_batch_matches_sequential``).
    for i, (seq_list, batched_list) in enumerate(
            zip(reference["lists"], fast["lists"])):
        assert seq_list.ids == batched_list.ids, (
            f"list[{i}] ranking diverged: {seq_list.ids} vs "
            f"{batched_list.ids}")
        np.testing.assert_allclose(
            [entry.score for entry in seq_list],
            [entry.score for entry in batched_list], rtol=1e-9, atol=1e-12)


register(OraclePair(
    name="serving.batched_vs_sequential",
    reference=lambda **case: _serving_run(False, **case),
    fast=lambda **case: _serving_run(True, **case),
    strategy=Strategy(
        "serving",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "tenants": int(rng.integers(1, 4)),
                     "per_tenant": int(rng.integers(1, 6)),
                     "batch": int(rng.integers(2, 7)),
                     "limited": int(rng.integers(0, 2))},
        {"tenants": shrink_int(1), "per_tenant": shrink_int(1),
         "batch": shrink_int(1)},
    ),
    compare=_serving_compare,
    cases=3,
    description="micro-batched serving front end matches sequential replay",
    guards=("REPRO_SERVING_BATCH",),
))


# ---------------------------------------------------------------------- #
# trace-and-fuse replay vs eager forward/backward
# ---------------------------------------------------------------------- #
def _fused_run(fused: bool, seed: int, batch: int, frames: int, grad: int):
    from repro.nn import jit
    from repro.nn.tensor import no_grad
    from repro.qa.world import tiny_extractor

    model = tiny_extractor(seed % 9973)
    if grad:
        for param in model.parameters():
            param.requires_grad = True
    run = jit.compile(model) if fused else model
    rng = np.random.default_rng(seed + 1)
    results = {}
    # Two distinct inputs per case: trial 0 is the recording pass on the
    # fused side (eager by construction), so only trial 1 exercises the
    # replay schedule — stale captured buffers cannot hide behind the
    # trace-time result.
    for trial in range(2):
        x = rng.standard_normal((batch, 3, frames, 8, 8))
        if grad:
            for param in model.parameters():
                param.grad = None
            xt = Tensor(x, requires_grad=True)
            out = run(xt)
            out.backward(np.ones_like(out.data))
            results[f"out.{trial}"] = out.data
            results[f"grad_x.{trial}"] = xt.grad
            for name, param in model.named_parameters():
                results[f"grad.{name}.{trial}"] = param.grad
        else:
            with no_grad():
                results[f"out.{trial}"] = run(Tensor(x)).data
    return results


def _fused_compare(reference, fast):
    assert reference.keys() == fast.keys()
    for key, value in reference.items():
        if value is None:
            assert fast[key] is None, f"{key}: eager None vs fused array"
            continue
        np.testing.assert_array_equal(value, fast[key], err_msg=key)


register(OraclePair(
    name="nn.fused_vs_eager",
    reference=lambda **case: _fused_run(False, **case),
    fast=lambda **case: _fused_run(True, **case),
    strategy=Strategy(
        "fused",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "batch": int(rng.integers(1, 3)),
                     "frames": int(rng.integers(1, 4)),
                     "grad": int(rng.integers(0, 2))},
        {"batch": shrink_int(1), "frames": shrink_int(1)},
    ),
    compare=_fused_compare,
    cases=3,
    description="trace-and-fuse replay is bit-identical to eager "
                "(outputs and gradients, replay pass included)",
    guards=("REPRO_NN_FUSE",),
))


register(OraclePair(
    name="ndcg.scalar_vs_many",
    reference=lambda seed, num_lists, length, universe: [
        ndcg_similarity(a, _ndcg_lists(seed, num_lists, length, universe)[1])
        for a in _ndcg_lists(seed, num_lists, length, universe)[0]
    ],
    fast=lambda seed, num_lists, length, universe:
        ndcg_similarity_many(*_ndcg_lists(seed, num_lists, length, universe)),
    strategy=Strategy(
        "ndcg",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "num_lists": int(rng.integers(1, 6)),
                     "length": int(rng.integers(1, 10)),
                     "universe": int(rng.integers(10, 30))},
        {"num_lists": shrink_int(1), "length": shrink_int(1)},
    ),
    compare=_exact_compare,
    cases=8,
    description="ndcg_similarity_many is bit-identical to scalar calls",
))


# ---------------------------------------------------------------------- #
# composed strategies vs legacy attack implementations
# ---------------------------------------------------------------------- #
#: Legacy attacks re-expressed as registry compositions; the reference
#: side runs the pre-redesign *code path* (the monolithic recipe — raw
#: support function + search primitive, or the untouched DUOAttack
#: pipeline), not the shim classes, so the contract is non-vacuous.
_LEGACY_STRATEGIES = ("vanilla", "heu-sim", "heu-nes", "duo", "timi")


def _attack_digests(service, adversarial, trace, queries) -> dict:
    return {
        "perturbation_digest": array_digest(adversarial.pixels),
        "trace": [float(value) for value in trace],
        "queries": int(queries),
        "service_queries": int(service.query_count),
    }


def _legacy_attack_run(name: str, seed: int, iters: int) -> dict:
    """The monolithic pre-redesign recipe for each legacy attack."""
    world = build_world(seed, cache_size=0)
    rng = np.random.default_rng(seed + 17)
    if name == "duo":
        from repro.attacks.duo import DUOAttack

        attack = DUOAttack(tiny_extractor(seed + 23), world.service, k=48,
                           n=2, tau=30.0, iter_num_q=iters, iter_num_h=2,
                           transfer_outer_iters=1, theta_steps=3, rng=rng)
        result = attack.run(world.original, world.target)
        return _attack_digests(world.service, result.adversarial,
                               result.objective_trace, result.queries_used)
    if name == "timi":
        from repro.attacks.timi import timi_transfer

        report = timi_transfer(tiny_extractor(seed + 23), world.original,
                               world.target, tau=30 / 255.0,
                               iterations=iters)
        return _attack_digests(world.service, report.adversarial,
                               report.trace, report.queries)

    from repro.attacks.search import nes_search, simba_search

    objective = RetrievalObjective(world.service, world.original,
                                   world.target)
    if name == "vanilla":
        from repro.attacks.vanilla import random_support

        support = random_support(world.original.pixels.shape, 48, 2, rng=rng)
        report = simba_search(world.original, objective, support,
                              tau=30 / 255.0, iterations=iters, rng=rng)
    elif name == "heu-sim":
        from repro.attacks.heu import saliency_support

        support = saliency_support(world.original, 48, 2, random_pixels=True,
                                   rng=rng)
        report = simba_search(world.original, objective, support,
                              tau=30 / 255.0, iterations=iters, rng=rng)
    else:  # heu-nes
        from repro.attacks.heu import saliency_support

        support = saliency_support(world.original, 48, 2, rng=rng)
        report = nes_search(world.original, objective, support,
                            tau=30 / 255.0, iterations=iters, samples=2,
                            rng=rng)
    return _attack_digests(world.service, report.adversarial, report.trace,
                           objective.queries)


def _composed_attack_run(name: str, seed: int, iters: int) -> dict:
    """The same attack through the registry and the ComposedAttack driver."""
    from repro.attacks.config import AttackConfig
    from repro.attacks.registry import build_attack

    world = build_world(seed, cache_size=0)
    rng = np.random.default_rng(seed + 17)
    surrogate = tiny_extractor(seed + 23) if name in ("duo", "timi") \
        else None
    if name == "duo":
        config = AttackConfig(strategy="duo", k=48, n=2, tau=30.0,
                              iterations=iters, rounds=2,
                              sampler={"outer_iters": 1, "theta_steps": 3})
    elif name == "timi":
        config = AttackConfig(strategy="timi", tau=30.0, iterations=iters)
    elif name == "heu-nes":
        config = AttackConfig(strategy="heu-nes", k=48, n=2, tau=30.0,
                              iterations=iters, feedback={"samples": 2})
    else:
        config = AttackConfig(strategy=name, k=48, n=2, tau=30.0,
                              iterations=iters)
    attack = build_attack(config,
                          service=None if name == "timi" else world.service,
                          surrogate=surrogate, rng=rng)
    report = attack.run(world.original, world.target)
    return _attack_digests(world.service, report.adversarial, report.trace,
                           report.queries)


register(OraclePair(
    name="attacks.composed_vs_legacy",
    reference=_legacy_attack_run,
    fast=_composed_attack_run,
    strategy=Strategy(
        "composed_attack",
        lambda rng: {
            "name": str(rng.choice(_LEGACY_STRATEGIES)),
            "seed": int(rng.integers(0, 500)),
            "iters": int(rng.integers(2, 6)),
        },
        {"iters": shrink_int(2)},
    ),
    compare=_exact_compare,
    cases=5,
    description="every legacy attack re-expressed as a registry "
                "composition is bit-identical (trace, queries, pixels)",
))


# ---------------------------------------------------------------------- #
# scale-out serving: worker pool + live gallery churn
# ---------------------------------------------------------------------- #
def _pooled_world(seed: int):
    """A deterministic multi-shard, replication-1 world for churn runs.

    Replication is pinned at 1 because :meth:`ShardedGallery.enable_churn`
    requires single-replica placement on a populated gallery; the
    replicated read path has its own oracle
    (``retrieval.replicated_vs_single``).
    """
    return build_world(seed % 997, num_videos=12, num_nodes=3,
                       replication=1)


def _pooled_config(batch: int, workers: int) -> ServingConfig:
    # Uncontended queue, no budgets: shedding under load has its own
    # tests; the pooled contract is about clean-path equivalence.
    return ServingConfig(max_batch_size=batch, max_wait_s=0.003,
                         queue_capacity=512, workers=workers)


def _pooled_run(workers: int, seed: int, tenants: int, per_tenant: int,
                batch: int):
    """A pure-query timeline through the front end at a worker count.

    The contract: worker count is semantics-invisible.  Admission,
    accounting, and snapshotting happen on the event-loop thread at
    arrival/dispatch virtual times, so W workers change virtual
    latencies and throughput but never statuses, rankings, or ledgers.
    """
    world = _pooled_world(seed)
    specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, per_tenant)
             for i in range(tenants)]
    timeline = generate_timeline(seed + 11, specs, world.gallery_videos)
    report = ServingFrontend(world.service,
                             _pooled_config(batch, workers)).run(timeline)
    return {
        "statuses": [response.status for response in report.responses],
        "lists": [response.result for response in report.responses
                  if response.ok],
        "served_by_tenant": report.served_by_tenant,
        "ledger": (world.service.query_count,
                   world.service.queries_issued,
                   world.service.queries_refunded),
    }


register(OraclePair(
    name="serving.pooled_vs_single",
    reference=lambda **case: _pooled_run(1, **case),
    fast=lambda **case: _pooled_run(3, **case),
    strategy=Strategy(
        "serving_pool",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "tenants": int(rng.integers(1, 4)),
                     "per_tenant": int(rng.integers(1, 6)),
                     "batch": int(rng.integers(2, 7))},
        {"tenants": shrink_int(1), "per_tenant": shrink_int(1),
         "batch": shrink_int(1)},
    ),
    compare=_serving_compare,
    cases=3,
    description="worker-pool execution is semantics-invisible: statuses, "
                "rankings, and ledgers match the single-worker scheduler",
    guards=("REPRO_SERVING_WORKERS",),
))


def _mutating_timeline(seed: int, tenants: int, per_tenant: int,
                       adds: int, deletes: int, reembeds: int):
    """One (requests ⊎ events) timeline and its world, deterministically."""
    from repro.serving import generate_churn

    world = _pooled_world(seed)
    specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, per_tenant)
             for i in range(tenants)]
    requests = generate_timeline(seed + 11, specs, world.gallery_videos)
    horizon = max((request.arrival_s for request in requests), default=0.1)
    events = generate_churn(seed, [v.video_id for v in world.gallery_videos],
                            adds=adds, deletes=deletes, reembeds=reembeds,
                            horizon_s=horizon)
    return world, list(requests) + list(events)


def _mutating_run(pooled: bool, seed: int, tenants: int, per_tenant: int,
                  adds: int, deletes: int, reembeds: int, batch: int):
    """Replay a mutating timeline pooled (W=3) or sequentially.

    The contract: a query admitted at time t sees exactly the gallery
    version current at t (events before queries on ties), no matter how
    long its batch waits on a worker — snapshot pinning at admission
    makes add/delete/re-embed under traffic linearizable at arrival
    order, with bit-identical ledgers.
    """
    from repro.serving import replay_sequential_mutating

    world, timeline = _mutating_timeline(seed, tenants, per_tenant,
                                         adds, deletes, reembeds)
    config = _pooled_config(batch, 3)
    if pooled:
        report = ServingFrontend(world.service, config).run(timeline)
    else:
        report = replay_sequential_mutating(timeline, world.service, config)
    return {
        "statuses": [response.status for response in report.responses],
        "lists": [response.result for response in report.responses
                  if response.ok],
        "served_by_tenant": report.served_by_tenant,
        "events": report.gallery_events,
        "ledger": (world.service.query_count,
                   world.service.queries_issued,
                   world.service.queries_refunded),
    }


def _mutating_compare(reference, fast):
    assert reference["events"] == fast["events"], (
        f"applied-event counts diverged: {reference['events']} vs "
        f"{fast['events']}")
    _serving_compare(reference, fast)


register(OraclePair(
    name="serving.mutating_timeline",
    reference=lambda **case: _mutating_run(False, **case),
    fast=lambda **case: _mutating_run(True, **case),
    strategy=Strategy(
        "serving_churn",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "tenants": int(rng.integers(1, 4)),
                     "per_tenant": int(rng.integers(2, 7)),
                     "adds": int(rng.integers(0, 4)),
                     "deletes": int(rng.integers(0, 5)),
                     "reembeds": int(rng.integers(0, 4)),
                     "batch": int(rng.integers(2, 7))},
        {"tenants": shrink_int(1), "per_tenant": shrink_int(1),
         "adds": shrink_int(0), "deletes": shrink_int(0),
         "reembeds": shrink_int(0), "batch": shrink_int(1)},
    ),
    compare=_mutating_compare,
    cases=3,
    description="interleaved query/add/delete/re-embed replayed "
                "sequentially matches the pooled front end: statuses, "
                "rankings, ledgers, and applied-event counts",
    guards=("REPRO_SERVING_WORKERS", "REPRO_GALLERY_CHURN"),
))


# ---------------------------------------------------------------------- #
# cost-model adaptive routing vs pinned defaults
# ---------------------------------------------------------------------- #
def _routing_profile(scalar: int, no_cache: int, fuse: int, no_spec: int,
                     batch: int):
    """A synthetic calibration profile forcing specific routed choices.

    Each case flag picks the "cheap" option per domain, so across cases
    the router is steered both toward and away from every default.  Only
    domains whose alternatives are bit-identical under their own oracle
    get entries — ``conv`` is deliberately absent (einsum vs GEMM is
    allclose-equal only), so the router must leave it at the default.
    """
    from repro.router import CalibrationProfile, CostEntry

    profile = CalibrationProfile(meta={"synthetic": True})

    def prefer(domain, key, options, winner):
        for option in options:
            profile.record(domain, key, option,
                           CostEntry(1e-6 if option == winner else 1e-3,
                                     count=3))

    for exponent in range(1, 7):
        prefer("search", f"b{exponent}", ("scalar", "batched"),
               "scalar" if scalar else "batched")
    prefer("embed_cache", "default", ("off", "on"),
           "off" if no_cache else "on")
    prefer("fuse", "default", ("off", "on"), "on" if fuse else "off")
    for attack in ("simba", "nes"):
        prefer("speculate", attack, ("off", "on"),
               "off" if no_spec else "on")
    prefer("serving_batch", "default",
           tuple(str(1 << i) for i in range(6)), str(1 << batch))
    return profile


def _routed_run(routed: bool, seed: int, tenants: int, per_tenant: int,
                iters: int, scalar: int, no_cache: int, fuse: int,
                no_spec: int, batch: int):
    """One serving timeline + one SparseQuery attack, routed or pinned.

    The contract under test: because the router only chooses among
    oracle-pinned equivalent implementations, enabling it with *any*
    profile is semantics-invisible — statuses, rankings, per-tenant
    counts, ledgers, perturbation digests, and query counts match the
    disabled-router run no matter which way each knob is steered.
    """
    from repro.qa.world import tiny_videos
    from repro.router import DISABLED, Router, set_router

    if routed:
        router = Router(profile=_routing_profile(scalar, no_cache, fuse,
                                                 no_spec, batch))
    else:
        router = DISABLED
    set_router(router)
    try:
        # Serving leg: the default micro-batch size resolves through the
        # router (ServingConfig is built without max_batch_size).
        world = build_world(seed % 997, num_videos=6, cache_size=32)
        videos = tiny_videos(seed + 3, 3, label_base=5)
        specs = [TenantSpec(f"tenant-{i}", 150.0 + 50.0 * i, per_tenant)
                 for i in range(tenants)]
        timeline = generate_timeline(seed + 11, specs, videos)
        config = ServingConfig(max_wait_s=0.003, queue_capacity=512)
        report = ServingFrontend(world.service, config).run(timeline)
        serving = {
            "statuses": [response.status for response in report.responses],
            "lists": [response.result for response in report.responses
                      if response.ok],
            "served_by_tenant": report.served_by_tenant,
            "ledger": (world.service.query_count,
                       world.service.queries_issued,
                       world.service.queries_refunded),
        }
        # Attack leg: embed-cache bypass, scalar/batched search, fuse,
        # and SimBA speculation all route per call (batched=None = auto).
        attack_world = build_world(seed % 991, cache_size=32)
        objective = RetrievalObjective(attack_world.service,
                                       attack_world.original,
                                       attack_world.target)
        attack = SparseQuery(iter_num_q=iters, tau=30, rng=seed + 5)
        priors = _qa_priors(attack_world.original.pixels.shape, seed + 9)
        adversarial, trace = attack.run(attack_world.original, priors,
                                        objective)
        attack_leg = {
            "perturbation_digest": array_digest(adversarial.pixels),
            "trace": list(trace),
            "objective_queries": objective.queries,
            "service_queries": attack_world.service.query_count,
        }
    finally:
        set_router(None)
    return {"serving": serving, "attack": attack_leg}


def _routed_compare(reference, fast):
    _serving_compare(reference["serving"], fast["serving"])
    assert reference["attack"] == fast["attack"], (
        f"routed attack run diverged from pinned:\n"
        f"  pinned: {reference['attack']}\n  routed: {fast['attack']}")


register(OraclePair(
    name="router.routed_vs_pinned",
    reference=lambda **case: _routed_run(False, **case),
    fast=lambda **case: _routed_run(True, **case),
    strategy=Strategy(
        "router",
        lambda rng: {"seed": int(rng.integers(0, 2**31)),
                     "tenants": int(rng.integers(1, 3)),
                     "per_tenant": int(rng.integers(1, 4)),
                     "iters": int(rng.integers(2, 4)),
                     "scalar": int(rng.integers(0, 2)),
                     "no_cache": int(rng.integers(0, 2)),
                     "fuse": int(rng.integers(0, 2)),
                     "no_spec": int(rng.integers(0, 2)),
                     "batch": int(rng.integers(0, 4))},
        {"tenants": shrink_int(1), "per_tenant": shrink_int(1),
         "iters": shrink_int(2), "scalar": shrink_int(0),
         "no_cache": shrink_int(0), "fuse": shrink_int(0),
         "no_spec": shrink_int(0), "batch": shrink_int(0)},
    ),
    compare=_routed_compare,
    cases=3,
    description="cost-model routing is semantics-invisible: any profile "
                "steering search/cache/fuse/speculation/batching yields "
                "the exact pinned-default results",
    guards=("REPRO_ROUTER", "REPRO_ROUTER_PROFILE", "REPRO_SERVING_BATCH",
            "REPRO_NN_FUSE"),
))
