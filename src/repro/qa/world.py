"""Tiny deterministic fixtures for oracle pairs and golden scenarios.

Everything here is seeded and *untrained*: a randomly-initialized
extractor is just as good an embedding function for equivalence checks
and regression traces as a trained one, and building it costs
milliseconds instead of the seconds a training loop takes.  The same
builders serve the differential oracles (two services over the same
world must agree) and the golden scenarios (one world's attack trace is
pinned as a regression baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models import create_feature_extractor
from repro.resilience.config import ResilienceConfig
from repro.retrieval.engine import RetrievalEngine
from repro.retrieval.service import RetrievalService
from repro.utils.seeding import SeedSequence
from repro.video.types import Video

#: Clip geometry shared by every qa world — matches the tier-1 test
#: fixtures (16×16, 8 frames) so model backbones see familiar shapes.
FRAMES, HEIGHT, WIDTH = 8, 16, 16


def tiny_videos(seed: int, count: int, label_base: int = 0) -> list[Video]:
    """``count`` random uniform videos with stable ids and labels."""
    rng = np.random.default_rng(seed)
    return [
        Video(rng.random((FRAMES, HEIGHT, WIDTH, 3)),
              label=label_base + (i % 3), video_id=f"qa-{seed}-{i}")
        for i in range(count)
    ]


def tiny_extractor(seed: int, feature_dim: int = 16, width: int = 2,
                   backbone: str = "resnet18"):
    """A frozen, randomly-initialized feature extractor."""
    extractor = create_feature_extractor(
        backbone, feature_dim=feature_dim, width=width,
        rng=np.random.default_rng(seed))
    extractor.eval()
    extractor.requires_grad_(False)
    return extractor


@dataclass
class TinyWorld:
    """A self-contained victim: service + the videos around it."""

    service: RetrievalService
    engine: RetrievalEngine
    gallery_videos: list[Video]
    original: Video
    target: Video


def build_world(seed: int = 7, *, num_videos: int = 9, num_nodes: int = 2,
                cache_size: int = 0, replication: int | None = None,
                m: int = 5, query_budget: int | None = None) -> TinyWorld:
    """Deterministically assemble a tiny retrieval world.

    Two calls with the same arguments produce bit-identical services
    (weights, gallery placement, retrieval scores); ``replication``
    installs a :class:`ResilienceConfig` before indexing so replicated
    and single-shard worlds hold the same logical gallery.
    """
    seeds = SeedSequence(seed)
    extractor = tiny_extractor(seeds.child("extractor"))
    engine = RetrievalEngine(extractor, num_nodes=num_nodes,
                             cache_size=cache_size)
    resilience = None if replication is None else \
        ResilienceConfig(replication=replication)
    service = RetrievalService.build(engine, m=m, query_budget=query_budget,
                                     resilience=resilience)
    gallery = tiny_videos(seeds.child("gallery"), num_videos)
    engine.index_videos(gallery)
    original, target = tiny_videos(seeds.child("queries"), 2, label_base=3)
    return TinyWorld(service=service, engine=engine, gallery_videos=gallery,
                     original=original, target=target)
