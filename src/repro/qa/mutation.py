"""Seeded fault injection — proof that the oracles have teeth.

A correctness harness that never fires is indistinguishable from one
that cannot fire.  :func:`seeded_conv_fault` deliberately perturbs the
GEMM conv kernel (the exact class of silent numerical drift the
differential oracles exist to catch); the mutation smoke test asserts
the ``conv*.einsum_vs_gemm`` pairs fail under the fault and pass again
once it is lifted.

The injection point is ``repro.perf.gemm_conv._conv_forward``: the
rank-specific entry points resolve it from module globals at call time,
so swapping the module attribute reroutes every GEMM conv — including
calls dispatched through ``repro.nn.functional`` — without touching any
other code path.
"""

from __future__ import annotations

import contextlib

from repro.perf import gemm_conv


@contextlib.contextmanager
def seeded_conv_fault(scale: float = 1.0 + 1e-3):
    """Multiply GEMM conv forward outputs by ``scale`` while active.

    The default fault is a 0.1% relative error — far above oracle
    tolerance, far below anything an end-to-end smoke test would
    notice, which is precisely the regression class the differential
    oracles must catch.
    """
    original = gemm_conv._conv_forward

    def faulty(x, weight, stride, padding, reuse_scratch):
        out, cols, padded_shape = original(x, weight, stride, padding,
                                           reuse_scratch)
        return out * scale, cols, padded_shape

    gemm_conv._conv_forward = faulty
    try:
        yield
    finally:
        gemm_conv._conv_forward = original


@contextlib.contextmanager
def seeded_fused_fault(scale: float = 1.0 + 1e-3):
    """Corrupt the fused elementwise-add replay kernel while active.

    Eager execution is untouched (it calls ``np.add`` directly); only
    traces recorded while the fault is live replay wrong, which is the
    silent-drift class the ``nn.fused_vs_eager`` oracle exists to catch.
    The injection point is ``repro.nn.tensor._ew_add`` — ``Tensor.__add__``
    resolves it from module globals at record time, so newly recorded
    schedules pick up the fault.  Trace caches are cleared on entry *and*
    exit: cached pre-fault schedules must not mask the fault, and cached
    faulty schedules must not outlive it.
    """
    import numpy as np

    from repro.nn import jit
    from repro.nn import tensor

    original = tensor._ew_add

    def faulty(srcs, out):
        original(srcs, out)
        np.multiply(out, scale, out=out)

    tensor._ew_add = faulty
    jit.clear_trace_caches()
    try:
        yield
    finally:
        tensor._ew_add = original
        jit.clear_trace_caches()
