"""Seeded input-generator strategies with shrink-on-failure.

A :class:`Strategy` couples a seeded ``sample(rng) -> case`` function
(cases are plain dicts of keyword arguments) with per-key *shrinkers*:
functions mapping a value to a sequence of strictly simpler candidates.
When an oracle check fails, :func:`shrink_to_minimal` greedily descends
through one-key simplifications until no simpler case still fails —
the reported counterexample is locally minimal, which turns "pair X
disagrees on a (4, 3, 9, 9) conv" into "pair X disagrees on a
(1, 1, 3, 3) conv".

Everything is driven by an explicit ``numpy.random.Generator``; the same
seed always yields the same case, so oracle failures reproduce exactly.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np


class Strategy:
    """A named, seeded case generator with optional per-key shrinkers.

    Parameters
    ----------
    name:
        Label used in failure reports.
    sample:
        ``sample(rng) -> dict`` producing one case.
    shrinkers:
        ``{key: value -> iterable of simpler values}``; keys without a
        shrinker are left untouched during minimization.
    """

    def __init__(self, name: str, sample: Callable[[np.random.Generator], dict],
                 shrinkers: dict[str, Callable] | None = None) -> None:
        self.name = name
        self._sample = sample
        self.shrinkers = dict(shrinkers or {})

    def sample(self, rng: np.random.Generator) -> dict:
        """Draw one case."""
        return self._sample(rng)

    def shrink(self, case: dict) -> Iterator[dict]:
        """Yield cases one simplification step away from ``case``."""
        for key, shrinker in self.shrinkers.items():
            if key not in case:
                continue
            for simpler in shrinker(case[key]):
                candidate = dict(case)
                candidate[key] = simpler
                yield candidate


def shrink_to_minimal(strategy: Strategy, case: dict,
                      fails: Callable[[dict], bool],
                      max_steps: int = 64) -> dict:
    """Greedily minimize a failing case.

    Repeatedly takes the first one-step simplification that still makes
    ``fails`` true, until none does (or ``max_steps`` simplifications
    were applied).  ``fails`` must be deterministic in the case.
    """
    for _ in range(int(max_steps)):
        for candidate in strategy.shrink(case):
            if fails(candidate):
                case = candidate
                break
        else:
            return case
    return case


# ---------------------------------------------------------------------- #
# Shrinkers
# ---------------------------------------------------------------------- #
def shrink_int(low: int) -> Callable[[int], Iterable[int]]:
    """Shrink an integer toward ``low``: try ``low``, then halve the gap."""
    def shrinker(value: int) -> Iterable[int]:
        value = int(value)
        out = []
        if value > low:
            out.append(low)
            halfway = low + (value - low) // 2
            if halfway not in (low, value):
                out.append(halfway)
        return out
    return shrinker


def shrink_shape(min_size: int = 1) -> Callable[[tuple], Iterable[tuple]]:
    """Shrink a shape tuple one axis at a time toward ``min_size``."""
    def shrinker(shape: tuple) -> Iterable[tuple]:
        out = []
        for axis, size in enumerate(shape):
            if size > min_size:
                smaller = list(shape)
                smaller[axis] = max(min_size, size // 2)
                out.append(tuple(smaller))
        return out
    return shrinker


def shrink_array(value: np.ndarray) -> Iterable[np.ndarray]:
    """Shrink an array: halve each axis (keeping the leading slice)."""
    out = []
    for axis, size in enumerate(value.shape):
        if size > 1:
            index = [slice(None)] * value.ndim
            index[axis] = slice(0, max(1, size // 2))
            out.append(np.ascontiguousarray(value[tuple(index)]))
    return out


# ---------------------------------------------------------------------- #
# Draw helpers (building blocks for strategy ``sample`` functions)
# ---------------------------------------------------------------------- #
def draw_tensor(rng: np.random.Generator, shape: tuple[int, ...],
                scale: float = 1.0) -> np.ndarray:
    """A standard-normal float64 tensor of ``shape`` times ``scale``."""
    return rng.normal(size=shape) * scale


def draw_video_pixels(rng: np.random.Generator, frames: int, height: int,
                      width: int, channels: int = 3) -> np.ndarray:
    """Uniform ``[0, 1]`` pixels in the paper's ``(N, H, W, C)`` layout."""
    return rng.random((frames, height, width, channels))


def draw_gallery(rng: np.random.Generator, rows: int, dim: int
                 ) -> tuple[list[str], list[int], np.ndarray]:
    """Ids, labels, and a ``(rows, dim)`` feature matrix for an index."""
    ids = [f"v{i}" for i in range(rows)]
    labels = [int(label) for label in rng.integers(0, max(2, rows // 3),
                                                   size=rows)]
    features = rng.normal(size=(rows, dim))
    return ids, labels, features


def draw_id_list(rng: np.random.Generator, universe: int, length: int
                 ) -> list[str]:
    """A without-replacement id list over ``universe`` candidates."""
    length = min(length, universe)
    chosen = rng.choice(universe, size=length, replace=False)
    return [f"v{i}" for i in chosen]


def draw_clustered_gallery(rng: np.random.Generator, rows: int, dim: int,
                           spread: float = 0.25
                           ) -> tuple[list[str], list[int], np.ndarray]:
    """A gallery whose features cluster, as real video embeddings do.

    Rows are drawn around ``max(2, rows // 12)`` unit-normal centers
    with ``spread`` intra-cluster noise; labels are the cluster ids.
    The compressed-tier recall oracles use this instead of
    :func:`draw_gallery` because pure isotropic Gaussian rows are the
    known worst case for every ANN structure (all points are nearly
    equidistant) and say nothing about behaviour on embedding-shaped
    data.
    """
    clusters = max(2, rows // 12)
    centers = rng.normal(size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=rows)
    features = centers[assignment] + spread * rng.normal(size=(rows, dim))
    ids = [f"v{i}" for i in range(rows)]
    return ids, [int(label) for label in assignment], features
