"""Tolerance-aware result comparators shared by oracles and goldens.

Two regimes, chosen per field:

* *bit-exact* — retrieval lists, rng-derived integer state, and content
  hashes, where the library documents bit-identical contracts;
* *allclose* — float values reachable through different summation orders
  (einsum vs GEMM), compared with explicit ``rtol``/``atol``.

All comparators raise ``AssertionError`` with a path-annotated message,
so a mismatch deep inside a nested result pinpoints the leaf.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Default tolerance for floats that may legitimately differ in
#: summation order between reference and fast paths.
RTOL = 1e-9
ATOL = 1e-12


def array_digest(array: np.ndarray) -> str:
    """BLAKE2b hex digest of an array's geometry + exact contents."""
    array = np.asarray(array)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(array.shape).encode())
    digest.update(str(array.dtype).encode())
    digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def assert_close(reference, fast, rtol: float = RTOL, atol: float = ATOL,
                 path: str = "result") -> None:
    """Recursively compare nested results with float tolerance.

    Dicts/lists/tuples are walked; arrays and floats compare with
    ``allclose``; everything else must be equal.
    """
    if isinstance(reference, dict):
        assert isinstance(fast, dict) and set(reference) == set(fast), (
            f"{path}: dict keys differ: {sorted(reference)} vs "
            f"{sorted(fast) if isinstance(fast, dict) else type(fast)}")
        for key in reference:
            assert_close(reference[key], fast[key], rtol, atol,
                         f"{path}[{key!r}]")
        return
    if isinstance(reference, (list, tuple)):
        assert isinstance(fast, (list, tuple)) and \
            len(reference) == len(fast), (
                f"{path}: length differs: {len(reference)} vs "
                f"{len(fast) if isinstance(fast, (list, tuple)) else type(fast)}")
        for index, (ref_item, fast_item) in enumerate(zip(reference, fast)):
            assert_close(ref_item, fast_item, rtol, atol, f"{path}[{index}]")
        return
    if isinstance(reference, np.ndarray) or isinstance(fast, np.ndarray) or \
            isinstance(reference, float) or isinstance(fast, float):
        np.testing.assert_allclose(
            np.asarray(fast), np.asarray(reference), rtol=rtol, atol=atol,
            err_msg=f"{path}: reference/fast value mismatch")
        return
    assert reference == fast, f"{path}: {reference!r} != {fast!r}"


def assert_retrieval_lists_equal(reference, fast, path: str = "list") -> None:
    """Bit-exact comparison of retrieval results.

    Accepts single lists of entries or batches of lists; entries must
    agree on id, label, *and* exact score — the batched kernels and the
    replicated merge both document bit-identical scoring.
    """
    ref_entries = getattr(reference, "entries", reference)
    fast_entries = getattr(fast, "entries", fast)
    assert len(ref_entries) == len(fast_entries), (
        f"{path}: length differs: {len(ref_entries)} vs {len(fast_entries)}")
    for index, (ref_entry, fast_entry) in enumerate(
            zip(ref_entries, fast_entries)):
        if isinstance(ref_entry, (list, tuple)) or \
                hasattr(ref_entry, "entries"):
            assert_retrieval_lists_equal(ref_entry, fast_entry,
                                         f"{path}[{index}]")
            continue
        assert ref_entry.video_id == fast_entry.video_id, (
            f"{path}[{index}]: id {ref_entry.video_id!r} != "
            f"{fast_entry.video_id!r}")
        assert ref_entry.label == fast_entry.label, (
            f"{path}[{index}]: label {ref_entry.label} != {fast_entry.label}")
        assert ref_entry.score == fast_entry.score, (
            f"{path}[{index}] ({ref_entry.video_id}): score "
            f"{ref_entry.score!r} != {fast_entry.score!r}")
